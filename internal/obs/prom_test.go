package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenSnapshot builds the fixed snapshot behind testdata/metrics.prom:
// a counter, a gauge, a plain histogram, a labeled counter family and a
// labeled histogram family, with hostile help strings and label values
// that exercise every escape rule.
func goldenSnapshot() []Metric {
	Enable()
	defer Disable()
	r := NewRegistry()
	r.Counter("pipeline.profiles_total",
		"profiles computed with \\ backslash\nand newline").Add(42)
	r.Gauge("server.queue_depth", "requests waiting for a worker").Set(3)
	h := r.Histogram("server.request_seconds", "request latency", 0.1, 0.5, 1)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	cv := r.CounterVec("server.errors_by_class", "errors by resilience class", "class", "route")
	cv.With("overload", "/v1/profile").Add(7)
	cv.With("bad \"input\"", "/v1/pro\\file\nx").Inc()
	hv := r.HistogramVec("server.route_seconds", "per-route latency", []string{"route"}, 0.1, 1)
	hv.With("/v1/profile").Observe(0.07)
	hv.With("/v1/profile").Observe(0.7)
	hv.With("/v1/history").Observe(0.01)
	return r.Snapshot()
}

// TestWritePrometheusGolden pins the exposition byte-for-byte. Run with
// UPDATE_GOLDEN=1 to regenerate after an intentional format change.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenSnapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusDeterministic: two encodes of equivalent snapshots
// built in different orders produce identical bytes.
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same logical snapshot differ")
	}
}

// TestPromEscaping covers the three escape rules and name sanitization.
func TestPromEscaping(t *testing.T) {
	cases := []struct{ in, help, label string }{
		{`plain`, `plain`, `plain`},
		{"a\nb", `a\nb`, `a\nb`},
		{`a\b`, `a\\b`, `a\\b`},
		{`a"b`, `a"b`, `a\"b`}, // quotes escape only in label values
	}
	for _, c := range cases {
		if got := promEscapeHelp(c.in); got != c.help {
			t.Errorf("promEscapeHelp(%q) = %q, want %q", c.in, got, c.help)
		}
		if got := promEscapeLabel(c.in); got != c.label {
			t.Errorf("promEscapeLabel(%q) = %q, want %q", c.in, got, c.label)
		}
	}
	names := []struct{ in, want string }{
		{"pipeline.profiles_total", "pipeline_profiles_total"},
		{"9lives", "_9lives"},
		{"a-b c", "a_b_c"},
		{"ns:sub", "ns:sub"},
	}
	for _, n := range names {
		if got := promName(n.in); got != n.want {
			t.Errorf("promName(%q) = %q, want %q", n.in, got, n.want)
		}
	}
	if got := promLabelName("a:b.c"); got != "a_b_c" {
		t.Errorf("promLabelName = %q, want a_b_c", got)
	}
}

// TestPromHistogramShape: buckets end at +Inf and the _count equals the
// last cumulative bucket.
func TestPromHistogramShape(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	h := r.Histogram("lat", "", 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_sum 55.5`,
		`lat_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// FuzzPromLabelValue: any label value must encode to exactly one sample
// line (escapes keep newlines out of the payload) and round-trip
// through unescaping.
func FuzzPromLabelValue(f *testing.F) {
	f.Add("plain")
	f.Add("with\nnewline")
	f.Add(`back\slash`)
	f.Add(`quo"te`)
	f.Add("\\\"\n\\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, value string) {
		m := Metric{
			Name: "fuzz.metric", Kind: "counter", Value: 1,
			Labels: []LabelPair{{Name: "l", Value: value}},
		}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, []Metric{m}); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		out := buf.String()
		lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
		if len(lines) != 3 { // HELP, TYPE, sample
			t.Fatalf("value %q produced %d lines, want 3:\n%s", value, len(lines), out)
		}
		sample := lines[2]
		// The escaped value must round-trip: unescape in reverse order.
		start := strings.Index(sample, `l="`)
		end := strings.LastIndex(sample, `"`)
		if start < 0 || end <= start+3-1 {
			t.Fatalf("sample line has no label value: %q", sample)
		}
		esc := sample[start+3 : end]
		var sb strings.Builder
		for i := 0; i < len(esc); i++ {
			if esc[i] == '\\' && i+1 < len(esc) {
				switch esc[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case '\\', '"':
					sb.WriteByte(esc[i+1])
				default:
					sb.WriteByte(esc[i])
					sb.WriteByte(esc[i+1])
				}
				i++
				continue
			}
			sb.WriteByte(esc[i])
		}
		if sb.String() != value {
			t.Fatalf("label value %q did not round-trip: escaped %q, unescaped %q",
				value, esc, sb.String())
		}
	})
}
