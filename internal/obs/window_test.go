package obs

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a manually stepped clock for window tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestWindowedHistogramQuantile: observations land in the current
// window and the merged quantile matches the cumulative estimator.
func TestWindowedHistogramQuantile(t *testing.T) {
	Enable()
	defer Disable()
	clk := newFakeClock()
	h := NewWindowedHistogram(10*time.Second, 12, clk.now, 1, 10, 100)
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	if got := h.Count(2 * time.Minute); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.Quantile(0.5, 2*time.Minute)
	if p50 > 1 {
		t.Fatalf("p50 = %v, want <= 1", p50)
	}
	p99 := h.Quantile(0.99, 2*time.Minute)
	if p99 <= 10 || p99 > 100 {
		t.Fatalf("p99 = %v, want in (10,100]", p99)
	}
}

// TestWindowedHistogramDecay: after the clock moves past the ring's
// span without traffic, the merged view is empty and the quantile NaN —
// unlike a cumulative histogram, which never forgets.
func TestWindowedHistogramDecay(t *testing.T) {
	Enable()
	defer Disable()
	clk := newFakeClock()
	h := NewWindowedHistogram(10*time.Second, 12, clk.now, 1, 10)
	cum := NewRegistry().Histogram("cum", "", 1, 10)
	for i := 0; i < 20; i++ {
		h.Observe(5)
		cum.Observe(5)
	}
	if got := h.Count(h.Span()); got != 20 {
		t.Fatalf("pre-decay count = %d, want 20", got)
	}
	// Partial decay: step just past half the ring; the old window is
	// still inside the trailing span, so the merged view keeps it.
	clk.advance(70 * time.Second)
	if got := h.Count(h.Span()); got != 20 {
		t.Fatalf("mid-span count = %d, want 20", got)
	}
	// Narrower window: the trailing 30s holds nothing.
	if got := h.Count(30 * time.Second); got != 0 {
		t.Fatalf("trailing-30s count = %d, want 0", got)
	}
	// Full decay: step past the whole span. Reads alone must expire the
	// data (lazy rotation on read, no writes needed).
	clk.advance(2 * time.Minute)
	if got := h.Count(h.Span()); got != 0 {
		t.Fatalf("post-decay count = %d, want 0", got)
	}
	if q := h.Quantile(0.99, h.Span()); !math.IsNaN(q) {
		t.Fatalf("post-decay p99 = %v, want NaN", q)
	}
	// The cumulative twin still remembers.
	if q := cum.Quantile(0.99); math.IsNaN(q) || q <= 0 {
		t.Fatalf("cumulative p99 = %v, want > 0", q)
	}
}

// TestWindowedHistogramRotation: windows outside the trailing duration
// drop out one width at a time.
func TestWindowedHistogramRotation(t *testing.T) {
	Enable()
	defer Disable()
	clk := newFakeClock()
	h := NewWindowedHistogram(10*time.Second, 6, clk.now, 1)
	for w := 0; w < 6; w++ {
		h.Observe(0.5)
		clk.advance(10 * time.Second)
	}
	// Six windows were filled with one observation each; the ring has
	// since rotated once more (the advance after the last observe), so
	// the oldest is one step from expiring.
	if got := h.Count(h.Span()); got != 5 {
		t.Fatalf("span count = %d, want 5 (oldest window expired)", got)
	}
	// The trailing 30s spans the current (empty) partial window plus
	// the two newest full windows.
	if got := h.Count(30 * time.Second); got != 2 {
		t.Fatalf("trailing-30s count = %d, want 2", got)
	}
	clk.advance(30 * time.Second)
	if got := h.Count(h.Span()); got != 2 {
		t.Fatalf("after +30s span count = %d, want 2", got)
	}
}

// TestWindowedHistogramCountLE: the threshold bucket reads back the
// at-or-under count the SLO latency burn rate needs.
func TestWindowedHistogramCountLE(t *testing.T) {
	Enable()
	defer Disable()
	clk := newFakeClock()
	h := NewWindowedHistogram(10*time.Second, 12, clk.now, 0.5, 1, 5)
	for i := 0; i < 8; i++ {
		h.Observe(0.2) // ≤ 0.5
	}
	h.Observe(3) // ≤ 5
	h.Observe(9) // overflow
	if got := h.CountLE(0.5, time.Minute); got != 8 {
		t.Fatalf("CountLE(0.5) = %d, want 8", got)
	}
	if got := h.CountLE(5, time.Minute); got != 9 {
		t.Fatalf("CountLE(5) = %d, want 9", got)
	}
	if got := h.CountLE(2, time.Minute); got != 0 {
		t.Fatalf("CountLE(unknown bound) = %d, want 0", got)
	}
}

// TestWindowedDisabled: disabled telemetry and nil receivers no-op.
func TestWindowedDisabled(t *testing.T) {
	Disable()
	clk := newFakeClock()
	h := NewWindowedHistogram(10*time.Second, 4, clk.now, 1)
	h.Observe(0.5)
	var nilH *WindowedHistogram
	nilH.Observe(1)
	if got := nilH.Count(time.Minute); got != 0 {
		t.Fatalf("nil Count = %d", got)
	}
	if q := nilH.Quantile(0.5, time.Minute); !math.IsNaN(q) {
		t.Fatalf("nil Quantile = %v, want NaN", q)
	}
	c := NewWindowedCounter(10*time.Second, 4, clk.now)
	c.Inc()
	var nilC *WindowedCounter
	nilC.Inc()
	Enable()
	defer Disable()
	if got := h.Count(time.Minute); got != 0 {
		t.Fatalf("disabled Observe leaked: %d", got)
	}
	if got := c.Sum(time.Minute); got != 0 {
		t.Fatalf("disabled Inc leaked: %d", got)
	}
}

// TestWindowedCounter: trailing sums honor the window boundaries and
// decay without writes.
func TestWindowedCounter(t *testing.T) {
	Enable()
	defer Disable()
	clk := newFakeClock()
	c := NewWindowedCounter(10*time.Second, 30, clk.now)
	c.Add(5)
	clk.advance(10 * time.Second)
	c.Add(3)
	if got := c.Sum(10 * time.Second); got != 3 {
		t.Fatalf("trailing-10s = %d, want 3", got)
	}
	if got := c.Sum(5 * time.Minute); got != 8 {
		t.Fatalf("trailing-5m = %d, want 8", got)
	}
	clk.advance(6 * time.Minute)
	if got := c.Sum(5 * time.Minute); got != 0 {
		t.Fatalf("post-decay = %d, want 0", got)
	}
}
