package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Collector captures a request-scoped span tree. The CLI's span
// machinery (StartRun/SpanTree) is process-global — one tree per run —
// which is the wrong shape for a server handling concurrent requests.
// A Collector is the per-request counterpart: the handler attaches one
// to its goroutine, the pipeline stages underneath keep calling the
// ordinary StartSpan/End, and those spans land in the request's own
// tree instead of the global one. Detach returns the finished tree.
//
// Routing is by goroutine id: StartSpan looks up a collector for the
// calling goroutine before falling back to the global run. Spans opened
// by other goroutines (the parallel worker pools) are not captured —
// same contract as the global tree, where concurrent work rides timer
// samples instead.
type Collector struct {
	gid int64
	t0  time.Time

	mu   sync.Mutex
	root *Span
	cur  *Span
}

// collectors is the goroutine-id → Collector registry. The count is
// kept separately in an atomic so the common no-collector case (every
// CLI span, and every server span while request tracing is off) pays
// one atomic load and no lock.
var collectors struct {
	n  atomic.Int64
	mu sync.RWMutex
	m  map[int64]*Collector
}

// AttachCollector registers a new collector for the calling goroutine
// and opens its root span. It returns nil while telemetry is disabled;
// nil collectors no-op on Detach, so call sites need no guards. If the
// goroutine already has a collector the new one replaces it (last
// wins) — callers are expected to Detach before re-attaching.
func AttachCollector(rootName string) *Collector {
	if !enabled.Load() {
		return nil
	}
	gid := curGID()
	now := time.Now()
	c := &Collector{gid: gid, t0: now}
	c.root = &Span{Name: rootName, GID: gid, start: now, col: c}
	c.cur = c.root
	collectors.mu.Lock()
	if collectors.m == nil {
		collectors.m = make(map[int64]*Collector)
	}
	if collectors.m[gid] == nil {
		collectors.n.Add(1)
	}
	collectors.m[gid] = c
	collectors.mu.Unlock()
	return c
}

// Detach unregisters the collector and returns its finished span tree.
// Any spans still open (including the root) are closed at the detach
// time, so a handler that panicked mid-stage still yields a coherent
// tree. Safe to call from any goroutine, and idempotent.
func (c *Collector) Detach() *Span {
	if c == nil {
		return nil
	}
	collectors.mu.Lock()
	if collectors.m[c.gid] == c {
		delete(collectors.m, c.gid)
		collectors.n.Add(-1)
	}
	collectors.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for s := c.cur; s != nil; s = s.parent {
		if s.DurNS == 0 {
			s.DurNS = now.Sub(s.start).Nanoseconds()
		}
	}
	c.cur = nil
	return c.root
}

// CurrentCollector returns the collector attached to the calling
// goroutine, or nil. Handlers capture it before handing work to
// another goroutine (a batch flush pass, say) so the executor can
// Adopt it and keep the request's span tree whole.
func CurrentCollector() *Collector {
	if collectors.n.Load() == 0 {
		return nil
	}
	return collectorFor(curGID())
}

// Adopt registers the collector for the calling goroutine as well, so
// spans this goroutine opens land in the same request tree the
// original handler goroutine owns. It returns a release function that
// MUST be called (on the same goroutine) when the borrowed work ends;
// release restores whatever collector the goroutine had before. A nil
// collector returns a no-op release, so the disabled-telemetry path
// needs no guards.
//
// The intended shape is strictly sequential hand-off: the owning
// goroutine blocks while the adopter executes (a coalesced flight's
// leader waiting on its batch item). If both race anyway, the
// collector's internal lock keeps the tree structurally sound — only
// the parent/child placement of the racing spans is unspecified.
func (c *Collector) Adopt() (release func()) {
	if c == nil {
		return func() {}
	}
	gid := curGID()
	collectors.mu.Lock()
	if collectors.m == nil {
		collectors.m = make(map[int64]*Collector)
	}
	prev := collectors.m[gid]
	if prev == nil {
		collectors.n.Add(1)
	}
	collectors.m[gid] = c
	collectors.mu.Unlock()
	return func() {
		collectors.mu.Lock()
		if collectors.m[gid] == c {
			if prev == nil {
				delete(collectors.m, gid)
				collectors.n.Add(-1)
			} else {
				collectors.m[gid] = prev
			}
		}
		collectors.mu.Unlock()
	}
}

// collectorFor returns the calling goroutine's collector, if any.
func collectorFor(gid int64) *Collector {
	collectors.mu.RLock()
	c := collectors.m[gid]
	collectors.mu.RUnlock()
	return c
}

// startSpan opens a child of the collector's current span.
func (c *Collector) startSpan(name string, gid int64) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil { // detached concurrently
		return nil
	}
	now := time.Now()
	s := &Span{
		Name:    name,
		StartNS: now.Sub(c.t0).Nanoseconds(),
		GID:     gid,
		parent:  c.cur,
		start:   now,
		col:     c,
	}
	c.cur.Children = append(c.cur.Children, s)
	c.cur = s
	return s
}

// end closes a collector-owned span, popping the cursor if it is
// current (mirrors the global End semantics).
func (c *Collector) end(s *Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.DurNS = time.Since(s.start).Nanoseconds()
	if c.cur == s {
		c.cur = s.parent
	}
}
