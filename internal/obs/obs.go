// Package obs is SimProf's zero-dependency telemetry subsystem: typed
// counters, gauges and histograms registered per package, hierarchical
// spans with monotonic durations, and a structured run manifest written
// as JSON next to trace/report artifacts.
//
// Two contracts drive the design:
//
//  1. Observation never perturbs the pipeline. Instrumentation touches
//     no RNG stream and no floating-point accumulation of the compute
//     kernels, so every numeric output is bit-for-bit identical with
//     telemetry on or off (guarded by a determinism test).
//
//  2. Disabled telemetry is free on hot paths. All record operations
//     gate on one atomic flag and allocate nothing either way; a
//     disabled Add/Observe/Set is a single atomic load and a branch,
//     and a disabled StartSpan returns a nil span whose methods no-op
//     (guarded by an allocation benchmark).
//
// Output is deterministic in structure: metric snapshots are sorted by
// name, manifest fields serialize in a fixed order, and the span tree
// follows the driver's stage order. Durations are the only wall-clock-
// dependent values; everything else replays identically for a seed.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the single global switch. All record operations check it;
// registration and snapshots work regardless.
var enabled atomic.Bool

// Enable turns on metric recording and span collection process-wide.
func Enable() { enabled.Store(true) }

// Disable turns telemetry back off. Recorded values stay readable.
func Disable() { enabled.Store(false) }

// Enabled reports whether telemetry is recording.
func Enabled() bool { return enabled.Load() }

// Registry holds the metrics of a process. Instrumented packages
// register their metrics against Default at init time; tests may build
// private registries.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing event count.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Gauge is a last-value-wins float measurement.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // Float64bits
}

// Histogram accumulates observations into fixed cumulative buckets
// (counts[i] tallies observations ≤ bounds[i]; the last slot is +Inf).
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1
	count      atomic.Int64
	sumBits    atomic.Uint64 // Float64bits of the running sum
}

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) histogram with this
// name. bounds must be sorted ascending; they are fixed for the life of
// the process so concurrent Observe calls never resize anything.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds...)
}

// Add increments the counter by n. A nil counter or disabled telemetry
// is a no-op; neither path allocates.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Sync stores an absolute value mirrored from an externally maintained
// tally (the access-log line/drop counts, say). Unlike Add it does not
// gate on the enabled flag: the mirrored tally is already the source of
// truth and Sync only makes it visible to Snapshot and the Prometheus
// exposition. Scrape handlers call it just before snapshotting.
func (c *Counter) Sync(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set stores v. A nil gauge or disabled telemetry is a no-op.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Observe records v. A nil histogram or disabled telemetry is a no-op;
// neither path allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile (p in [0,1], clamped) from the
// histogram's cumulative buckets by linear interpolation inside the
// containing bucket, taking 0 as the lower edge of the first bucket.
// A rank that lands in the overflow bucket returns the last finite
// bound — the histogram cannot resolve beyond it. An empty or nil
// histogram returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	bs := make([]Bucket, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := infLE
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		bs[i] = Bucket{LE: le, Count: cum}
	}
	return quantileFromBuckets(bs, p)
}

// quantileFromBuckets is the shared quantile estimator over a
// cumulative bucket snapshot (live Histogram or serialized Metric).
func quantileFromBuckets(bs []Bucket, p float64) float64 {
	if len(bs) == 0 || bs[len(bs)-1].Count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(bs[len(bs)-1].Count)
	var prevCum int64
	lo := 0.0
	for _, b := range bs {
		if float64(b.Count) >= rank && b.Count > prevCum {
			if b.LE >= infLE {
				// Overflow bucket: the last finite bound is the best
				// (and only) answer the fixed buckets can give.
				return lo
			}
			in := float64(b.Count - prevCum)
			return lo + (b.LE-lo)*((rank-float64(prevCum))/in)
		}
		prevCum = b.Count
		if b.LE < infLE {
			lo = b.LE
		}
	}
	return lo
}

// Quantile estimates the p-quantile of a snapshotted histogram metric
// from its cumulative buckets (NaN for non-histogram or empty metrics).
func (m Metric) Quantile(p float64) float64 {
	return quantileFromBuckets(m.Buckets, p)
}

// Metric is one snapshotted metric value, JSON-ready.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
	Help string `json:"help,omitempty"`
	// Value is the counter count, the gauge value, or the histogram
	// observation count.
	Value float64 `json:"value"`
	// Sum and Buckets are set for histograms only. Buckets[i].Count is
	// cumulative up to Buckets[i].LE.
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	// Labels identifies the child of a labeled family (empty for scalar
	// metrics), in the family's registered label-name order.
	Labels []LabelPair `json:"labels,omitempty"`
}

// Bucket is one cumulative histogram bucket: Count observations were
// ≤ LE. The overflow bucket uses MaxFloat64 as its bound because
// encoding/json rejects IEEE infinities.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// infLE is the JSON-safe stand-in for the +Inf bucket bound
// (encoding/json rejects IEEE infinities).
const infLE = math.MaxFloat64

// histMetric builds the snapshot metric for one histogram.
func histMetric(name, help string, h *Histogram, labels []LabelPair) Metric {
	m := Metric{Name: name, Kind: "histogram", Help: help,
		Value: float64(h.count.Load()), Sum: h.Sum(), Labels: labels}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := infLE
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		m.Buckets = append(m.Buckets, Bucket{LE: le, Count: cum})
	}
	return m
}

// Snapshot returns every touched metric in a deterministic order:
// sorted by name, ties broken by kind, then by the canonical sorted
// label-pair key, so labeled children of one family appear in a stable
// sequence across runs and processes. Manifest and history diffs rely
// on this ordering. Metrics that were never incremented, set or
// observed are skipped so manifests only carry the signals the run
// actually produced.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	for name, c := range r.counters {
		if v := c.v.Load(); v != 0 {
			out = append(out, Metric{Name: name, Kind: "counter", Help: c.help, Value: float64(v)})
		}
	}
	for name, g := range r.gauges {
		if bits := g.bits.Load(); bits != 0 {
			out = append(out, Metric{Name: name, Kind: "gauge", Help: g.help, Value: math.Float64frombits(bits)})
		}
	}
	for name, h := range r.hists {
		if h.count.Load() == 0 {
			continue
		}
		out = append(out, histMetric(name, h.help, h, nil))
	}
	for _, v := range r.counterVecs {
		v.set.mu.Lock()
		for _, k := range v.set.keys {
			if c := v.children[k]; c.v.Load() != 0 {
				out = append(out, Metric{Name: v.name, Kind: "counter", Help: v.help,
					Value: float64(c.v.Load()), Labels: v.set.pairs(v.set.values[k])})
			}
		}
		v.set.mu.Unlock()
	}
	for _, v := range r.gaugeVecs {
		v.set.mu.Lock()
		for _, k := range v.set.keys {
			if g := v.children[k]; g.bits.Load() != 0 {
				out = append(out, Metric{Name: v.name, Kind: "gauge", Help: v.help,
					Value: math.Float64frombits(g.bits.Load()), Labels: v.set.pairs(v.set.values[k])})
			}
		}
		v.set.mu.Unlock()
	}
	for _, v := range r.histVecs {
		v.set.mu.Lock()
		for _, k := range v.set.keys {
			if h := v.children[k]; h.count.Load() != 0 {
				out = append(out, histMetric(v.name, v.help, h, v.set.pairs(v.set.values[k])))
			}
		}
		v.set.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Name != out[b].Name {
			return out[a].Name < out[b].Name
		}
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].LabelsKey() < out[b].LabelsKey()
	})
	return out
}

// Reset zeroes every metric in the registry (the handles stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		resetHist(h)
	}
	for _, v := range r.counterVecs {
		v.set.mu.Lock()
		for _, c := range v.children {
			c.v.Store(0)
		}
		v.set.mu.Unlock()
	}
	for _, v := range r.gaugeVecs {
		v.set.mu.Lock()
		for _, g := range v.children {
			g.bits.Store(0)
		}
		v.set.mu.Unlock()
	}
	for _, v := range r.histVecs {
		v.set.mu.Lock()
		for _, h := range v.children {
			resetHist(h)
		}
		v.set.mu.Unlock()
	}
}

func resetHist(h *Histogram) {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}
