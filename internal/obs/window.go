package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Sliding-window metrics: a ring of fixed-width time windows, merged on
// read, so a quantile or a rate can answer "over the last two minutes"
// instead of "since boot". A WindowedHistogram with 12 windows of 10s
// each resolves tail latency over the trailing two minutes; the SLO
// tracker builds its 5m/1h burn-rate windows from WindowedCounters the
// same way.
//
// The ring rotates lazily: both writes and reads first expire windows
// the clock has moved past, so a window's contents decay even when no
// new observations arrive — which is exactly the property a live p99
// needs (a cumulative histogram's p99 never forgets a load spike; the
// windowed one does, n·width later).
//
// Windowed metrics are standalone values, not registry entries: a
// server owns its own rings (with an injectable clock for tests) and
// exposes merged views through its own endpoints, while the cumulative
// twins it also feeds live in the registry as ordinary metrics.

// WindowedHistogram is a ring of n fixed-bucket windows of equal width.
// Safe for concurrent use. Observations respect the global telemetry
// switch like every other obs metric.
type WindowedHistogram struct {
	bounds []float64
	width  time.Duration
	now    func() time.Time

	mu       sync.Mutex
	cells    []winCell
	cur      int
	curStart time.Time // start of cells[cur]; zero until first touch
}

type winCell struct {
	counts []int64 // per-bucket (non-cumulative), len(bounds)+1
	count  int64
	sum    float64
}

// NewWindowedHistogram builds a ring of n windows of the given width.
// bounds must be sorted ascending (the last implicit bucket is +Inf).
// A nil now uses the wall clock; tests inject a stepped clock.
func NewWindowedHistogram(width time.Duration, n int, now func() time.Time, bounds ...float64) *WindowedHistogram {
	if width <= 0 {
		width = 10 * time.Second
	}
	if n <= 0 {
		n = 12
	}
	if now == nil {
		now = time.Now
	}
	h := &WindowedHistogram{
		bounds: append([]float64(nil), bounds...),
		width:  width,
		now:    now,
		cells:  make([]winCell, n),
	}
	for i := range h.cells {
		h.cells[i].counts = make([]int64, len(bounds)+1)
	}
	return h
}

// Span returns the total time the ring covers (width × windows).
func (h *WindowedHistogram) Span() time.Duration {
	if h == nil {
		return 0
	}
	return h.width * time.Duration(len(h.cells))
}

// rotate expires windows the clock has moved past. Callers hold h.mu.
func (h *WindowedHistogram) rotate(now time.Time) {
	if h.curStart.IsZero() {
		h.curStart = now
		return
	}
	steps := int64(now.Sub(h.curStart) / h.width)
	if steps <= 0 {
		return
	}
	n := int64(len(h.cells))
	if steps >= n {
		for i := range h.cells {
			h.cells[i].reset()
		}
		h.cur = 0
		h.curStart = now
		return
	}
	for i := int64(0); i < steps; i++ {
		h.cur = (h.cur + 1) % len(h.cells)
		h.cells[h.cur].reset()
	}
	h.curStart = h.curStart.Add(time.Duration(steps) * h.width)
}

func (c *winCell) reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.count = 0
	c.sum = 0
}

// Observe records v into the current window. A nil receiver or disabled
// telemetry is a no-op.
func (h *WindowedHistogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.rotate(h.now())
	c := &h.cells[h.cur]
	c.counts[i]++
	c.count++
	c.sum += v
	h.mu.Unlock()
}

// merged sums the most recent windows covering the trailing duration
// `over` (clamped to [width, Span]) into a cumulative bucket snapshot.
func (h *WindowedHistogram) merged(over time.Duration) ([]Bucket, int64, float64) {
	k := int((over + h.width - 1) / h.width)
	if k < 1 {
		k = 1
	}
	if k > len(h.cells) {
		k = len(h.cells)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotate(h.now())
	sums := make([]int64, len(h.bounds)+1)
	var count int64
	var sum float64
	for i := 0; i < k; i++ {
		c := &h.cells[(h.cur-i+len(h.cells))%len(h.cells)]
		for j, v := range c.counts {
			sums[j] += v
		}
		count += c.count
		sum += c.sum
	}
	bs := make([]Bucket, len(sums))
	cum := int64(0)
	for i, v := range sums {
		cum += v
		le := infLE
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		bs[i] = Bucket{LE: le, Count: cum}
	}
	return bs, count, sum
}

// Quantile estimates the p-quantile over the trailing duration `over`
// (rounded up to whole windows, clamped to the ring's span), with the
// same interpolation semantics as Histogram.Quantile. Returns NaN when
// the merged windows hold no observations — the signal has decayed.
func (h *WindowedHistogram) Quantile(p float64, over time.Duration) float64 {
	if h == nil {
		return math.NaN()
	}
	bs, _, _ := h.merged(over)
	return quantileFromBuckets(bs, p)
}

// Count returns the observation count over the trailing duration.
func (h *WindowedHistogram) Count(over time.Duration) int64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.merged(over)
	return n
}

// Sum returns the observation sum over the trailing duration.
func (h *WindowedHistogram) Sum(over time.Duration) float64 {
	if h == nil {
		return 0
	}
	_, _, s := h.merged(over)
	return s
}

// CountLE returns how many observations over the trailing duration were
// ≤ le, which must be one of the ring's bounds (an unknown bound
// returns 0). SLO latency burn rates read the threshold bucket this
// way.
func (h *WindowedHistogram) CountLE(le float64, over time.Duration) int64 {
	if h == nil {
		return 0
	}
	bs, _, _ := h.merged(over)
	for _, b := range bs {
		if b.LE == le {
			return b.Count
		}
	}
	return 0
}

// WindowedCounter is a ring of n equal-width count windows; Sum reads
// the trailing total over any duration up to the ring's span.
type WindowedCounter struct {
	width time.Duration
	now   func() time.Time

	mu       sync.Mutex
	cells    []int64
	cur      int
	curStart time.Time
}

// NewWindowedCounter builds a ring of n windows of the given width.
func NewWindowedCounter(width time.Duration, n int, now func() time.Time) *WindowedCounter {
	if width <= 0 {
		width = 10 * time.Second
	}
	if n <= 0 {
		n = 12
	}
	if now == nil {
		now = time.Now
	}
	return &WindowedCounter{width: width, now: now, cells: make([]int64, n)}
}

// rotate expires windows the clock has moved past. Callers hold c.mu.
func (c *WindowedCounter) rotate(now time.Time) {
	if c.curStart.IsZero() {
		c.curStart = now
		return
	}
	steps := int64(now.Sub(c.curStart) / c.width)
	if steps <= 0 {
		return
	}
	if steps >= int64(len(c.cells)) {
		for i := range c.cells {
			c.cells[i] = 0
		}
		c.cur = 0
		c.curStart = now
		return
	}
	for i := int64(0); i < steps; i++ {
		c.cur = (c.cur + 1) % len(c.cells)
		c.cells[c.cur] = 0
	}
	c.curStart = c.curStart.Add(time.Duration(steps) * c.width)
}

// Add records n events in the current window. A nil receiver or
// disabled telemetry is a no-op.
func (c *WindowedCounter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.mu.Lock()
	c.rotate(c.now())
	c.cells[c.cur] += n
	c.mu.Unlock()
}

// Inc is Add(1).
func (c *WindowedCounter) Inc() { c.Add(1) }

// Sum returns the event total over the trailing duration (rounded up to
// whole windows, clamped to the ring's span).
func (c *WindowedCounter) Sum(over time.Duration) int64 {
	if c == nil {
		return 0
	}
	k := int((over + c.width - 1) / c.width)
	if k < 1 {
		k = 1
	}
	if k > len(c.cells) {
		k = len(c.cells)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotate(c.now())
	var total int64
	for i := 0; i < k; i++ {
		total += c.cells[(c.cur-i+len(c.cells))%len(c.cells)]
	}
	return total
}
