package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	t.Run("nil-and-empty", func(t *testing.T) {
		var hnil *Histogram
		if q := hnil.Quantile(0.5); !math.IsNaN(q) {
			t.Errorf("nil histogram quantile = %v, want NaN", q)
		}
		r := NewRegistry()
		h := r.Histogram("q.empty", "", 1, 10)
		if q := h.Quantile(0.5); !math.IsNaN(q) {
			t.Errorf("empty histogram quantile = %v, want NaN", q)
		}
	})

	t.Run("interpolated", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("q.interp", "", 10, 20, 30)
		withEnabled(t, func() {
			// 10 observations in (0,10], 10 in (10,20].
			for i := 0; i < 10; i++ {
				h.Observe(5)
				h.Observe(15)
			}
		})
		// p=0.5 → rank 10 → upper edge of the first bucket.
		if q := h.Quantile(0.5); math.Abs(q-10) > 1e-9 {
			t.Errorf("p50 = %v, want 10", q)
		}
		// p=0.75 → rank 15 → halfway through the (10,20] bucket.
		if q := h.Quantile(0.75); math.Abs(q-15) > 1e-9 {
			t.Errorf("p75 = %v, want 15", q)
		}
		// p=0 → lower edge of the first non-empty bucket (0).
		if q := h.Quantile(0); q != 0 {
			t.Errorf("p0 = %v, want 0", q)
		}
		// Out-of-range p clamps rather than erroring.
		if q := h.Quantile(1.5); math.Abs(q-20) > 1e-9 {
			t.Errorf("clamped p = %v, want 20", q)
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("q.single", "", 100)
		withEnabled(t, func() {
			for i := 0; i < 4; i++ {
				h.Observe(50)
			}
		})
		// All mass in [0,100]: quantiles interpolate linearly across it.
		if q := h.Quantile(0.5); math.Abs(q-50) > 1e-9 {
			t.Errorf("p50 = %v, want 50", q)
		}
		if q := h.Quantile(1); math.Abs(q-100) > 1e-9 {
			t.Errorf("p100 = %v, want 100", q)
		}
	})

	t.Run("overflow-bucket", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("q.over", "", 1, 2)
		withEnabled(t, func() {
			h.Observe(0.5)
			h.Observe(99)
			h.Observe(1000)
		})
		// Ranks landing in the +Inf bucket return the last finite bound.
		if q := h.Quantile(0.9); q != 2 {
			t.Errorf("overflow quantile = %v, want last bound 2", q)
		}
		// A histogram with no finite bounds degenerates to 0.
		h2 := r.Histogram("q.nobounds", "")
		withEnabled(t, func() { h2.Observe(7) })
		if q := h2.Quantile(0.5); q != 0 {
			t.Errorf("boundless histogram quantile = %v, want 0", q)
		}
	})

	t.Run("metric-snapshot", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("q.metric", "", 10, 20)
		withEnabled(t, func() {
			for i := 0; i < 10; i++ {
				h.Observe(5)
			}
		})
		var hist Metric
		for _, m := range r.Snapshot() {
			if m.Name == "q.metric" {
				hist = m
			}
		}
		if q := hist.Quantile(0.5); math.Abs(q-5) > 1e-9 {
			t.Errorf("metric p50 = %v, want 5", q)
		}
		// Non-histogram metrics (no buckets) have no quantiles.
		if q := (Metric{Kind: "counter"}).Quantile(0.5); !math.IsNaN(q) {
			t.Errorf("counter quantile = %v, want NaN", q)
		}
	})
}

// TestSnapshotDeterministicOrder pins the snapshot ordering contract:
// sorted by name, ties across kinds broken by kind, identical on every
// call. History and manifest diffs match metrics positionally within a
// name, so this order must never depend on map iteration.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register in a scrambled order, including one name shared by all
	// three kinds (the tie case map iteration would shuffle).
	names := []string{"z.last", "a.first", "m.mid", "shared"}
	withEnabled(t, func() {
		for _, n := range names {
			r.Counter(n+".c", "").Inc()
		}
		r.Counter("shared", "").Inc()
		r.Gauge("shared", "").Set(1)
		r.Histogram("shared", "", 1).Observe(0.5)
	})
	want := []string{
		"a.first.c counter", "m.mid.c counter", "shared counter",
		"shared gauge", "shared histogram", "shared.c counter",
		"z.last.c counter",
	}
	for trial := 0; trial < 10; trial++ {
		snap := r.Snapshot()
		if len(snap) != len(want) {
			t.Fatalf("snapshot has %d metrics, want %d", len(snap), len(want))
		}
		for i, m := range snap {
			if got := m.Name + " " + m.Kind; got != want[i] {
				t.Fatalf("trial %d: snapshot[%d] = %q, want %q", trial, i, got, want[i])
			}
		}
	}
}
