package obs

import "testing"

// BenchmarkTelemetryDisabled is the guard for the no-op sink contract:
// with telemetry off, every record operation must run in a few
// nanoseconds and allocate nothing. scripts/check.sh fails the build if
// any sub-benchmark reports a non-zero allocs/op.
func BenchmarkTelemetryDisabled(b *testing.B) {
	Disable()
	c := NewCounter("bench.disabled.counter", "")
	g := NewGauge("bench.disabled.gauge", "")
	h := NewHistogram("bench.disabled.hist", "", 1, 10, 100)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i))
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StartSpan("x").End()
		}
	})
	b.Run("timer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveTimer(StartTimer())
		}
	})
}

// BenchmarkObsDisabledLabeled extends the no-op sink guard to labeled
// families and windowed metrics: With must return nil (and the child
// methods no-op) without touching the children map, and a windowed
// Observe must bail before taking the ring lock. scripts/check.sh fails
// the build if any sub-benchmark reports a non-zero allocs/op.
func BenchmarkObsDisabledLabeled(b *testing.B) {
	Disable()
	cv := NewCounterVec("bench.disabled.countervec", "", "route", "status")
	gv := NewGaugeVec("bench.disabled.gaugevec", "", "queue")
	hv := NewHistogramVec("bench.disabled.histvec", "", []string{"route"}, 1, 10, 100)
	wh := NewWindowedHistogram(0, 0, nil, 1, 10, 100)
	wc := NewWindowedCounter(0, 0, nil)
	b.Run("countervec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cv.With("/v1/profile", "200").Inc()
		}
	})
	b.Run("gaugevec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gv.With("fast").Set(float64(i))
		}
	})
	b.Run("histogramvec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hv.With("/v1/profile").Observe(float64(i))
		}
	})
	b.Run("windowedhist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wh.Observe(float64(i))
		}
	})
	b.Run("windowedcounter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wc.Inc()
		}
	})
}

// BenchmarkTelemetryEnabled measures the recording cost, for the
// overhead table in EXPERIMENTS.md.
func BenchmarkTelemetryEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := NewCounter("bench.enabled.counter", "")
	h := NewHistogram("bench.enabled.hist", "", 1, 10, 100)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i % 200))
		}
	})
}
