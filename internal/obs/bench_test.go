package obs

import "testing"

// BenchmarkTelemetryDisabled is the guard for the no-op sink contract:
// with telemetry off, every record operation must run in a few
// nanoseconds and allocate nothing. scripts/check.sh fails the build if
// any sub-benchmark reports a non-zero allocs/op.
func BenchmarkTelemetryDisabled(b *testing.B) {
	Disable()
	c := NewCounter("bench.disabled.counter", "")
	g := NewGauge("bench.disabled.gauge", "")
	h := NewHistogram("bench.disabled.hist", "", 1, 10, 100)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i))
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			StartSpan("x").End()
		}
	})
	b.Run("timer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveTimer(StartTimer())
		}
	})
}

// BenchmarkTelemetryEnabled measures the recording cost, for the
// overhead table in EXPERIMENTS.md.
func BenchmarkTelemetryEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := NewCounter("bench.enabled.counter", "")
	h := NewHistogram("bench.enabled.hist", "", 1, 10, 100)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i % 200))
		}
	})
}
