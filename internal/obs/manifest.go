package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
)

// ManifestVersion is bumped whenever the manifest schema changes shape.
// Version history:
//
//	1  spans + metrics + typed pipeline sections
//	2  adds span GIDs and concurrent timer samples (trace export)
//	3  adds the request section (retained request traces)
const ManifestVersion = 3

// Manifest is the structured provenance record of one pipeline run:
// what ran, with which seeds and knobs, what the pipeline decided
// (k, silhouette, allocation), what it estimated (CPI, SE, CI), and
// the telemetry it produced (metric snapshot, span tree). It is plain
// data with no pipeline imports, so the cmd layer fills the typed
// sections from the packages that own them.
type Manifest struct {
	Version int       `json:"version"`
	Tool    string    `json:"tool"` // e.g. "simprof compare"
	Args    []string  `json:"args,omitempty"`
	Build   BuildInfo `json:"build"`

	Workload *WorkloadInfo `json:"workload,omitempty"`
	Faults   *FaultInfo    `json:"faults,omitempty"`
	Phases   *PhaseInfo    `json:"phases,omitempty"`
	Sampling *SamplingInfo `json:"sampling,omitempty"`
	Request  *RequestInfo  `json:"request,omitempty"`

	Metrics []Metric `json:"metrics,omitempty"`
	Spans   *Span    `json:"spans,omitempty"`
	// TimerSamples are the concurrent intervals captured inside parallel
	// loops (sorted by start); TimerSamplesDropped counts overflow past
	// the per-run buffer bound.
	TimerSamples        []TimerSample `json:"timer_samples,omitempty"`
	TimerSamplesDropped int64         `json:"timer_samples_dropped,omitempty"`
}

// BuildInfo identifies the binary that produced a manifest.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision baked in by the Go toolchain
	// (git describe equivalent), "devel" when built without VCS stamps.
	Revision string `json:"revision"`
	Modified bool   `json:"modified,omitempty"` // dirty working tree
}

// WorkloadInfo records what was profiled.
type WorkloadInfo struct {
	Benchmark string  `json:"benchmark"`
	Framework string  `json:"framework"`
	Input     string  `json:"input,omitempty"`
	Seed      uint64  `json:"seed"`
	Workers   int     `json:"workers"`
	Units     int     `json:"units"`
	UnitInstr uint64  `json:"unit_instr"`
	OracleCPI float64 `json:"oracle_cpi"`
	// DegradedFraction is the share of units with any effective quality
	// flag; Quality is the human-readable tally.
	DegradedFraction float64 `json:"degraded_fraction"`
	Quality          string  `json:"quality,omitempty"`
}

// FaultInfo records an injected fault schedule and its per-channel
// injection counts.
type FaultInfo struct {
	Spec            string `json:"spec"`
	Seed            uint64 `json:"seed"`
	CountersDropped int    `json:"counters_dropped"`
	Multiplexed     int    `json:"multiplexed"`
	SnapshotsLost   int    `json:"snapshots_lost"`
	CrashedThreads  int    `json:"crashed_threads"`
	UnitsLost       int    `json:"units_lost"`
	Duplicated      int    `json:"duplicated"`
	Displaced       int    `json:"displaced"`
	Repair          string `json:"repair,omitempty"` // repair report, if Repair ran
}

// PhaseInfo records the phase-formation outcome.
type PhaseInfo struct {
	K                int       `json:"k"`
	Silhouette       float64   `json:"silhouette"`
	KScores          []float64 `json:"k_scores,omitempty"` // silhouette per swept k (index 0 ↔ k=1)
	DegradedFraction float64   `json:"degraded_fraction"`
}

// SamplingInfo records a sampling run: the estimate, its uncertainty
// and the per-stratum allocation that produced it.
type SamplingInfo struct {
	Method      string        `json:"method"`
	N           int           `json:"n"` // requested sample size
	Confidence  float64       `json:"confidence"`
	EstCPI      float64       `json:"est_cpi"`
	SE          float64       `json:"se"`
	CILo        float64       `json:"ci_lo"`
	CIHi        float64       `json:"ci_hi"`
	OracleCPI   float64       `json:"oracle_cpi"`
	RelErr      float64       `json:"rel_err"`
	SEInflation float64       `json:"se_inflation,omitempty"`
	Strata      []StratumInfo `json:"strata,omitempty"`
}

// StratumInfo is one row of the Neyman allocation table (Eq. 1).
type StratumInfo struct {
	Phase       int     `json:"phase"`
	Units       int     `json:"units"`    // population N_h
	Measured    int     `json:"measured"` // drawable frame size
	Weight      float64 `json:"weight"`   // N_h / N
	Sigma       float64 `json:"sigma"`    // profiled σ_h
	Alloc       int     `json:"alloc"`    // n_h
	SampledMean float64 `json:"sampled_mean"`
	Imputed     bool    `json:"imputed,omitempty"`
}

// RequestInfo records one retained request trace: the request's
// identity, its outcome, and the retention bookkeeping that makes the
// retained set a weighted sample (which stratum it fell in, whether a
// forced-keep rule fired, and the inclusion probability at the moment
// it was persisted — the live value keeps moving as the stratum sees
// more traffic).
type RequestInfo struct {
	ID      string  `json:"id"`
	Route   string  `json:"route"`
	Tenant  string  `json:"tenant,omitempty"`
	Status  int     `json:"status"`
	Class   string  `json:"class"`
	Bytes   int64   `json:"bytes,omitempty"`
	Start   string  `json:"start,omitempty"` // RFC3339Nano
	Latency float64 `json:"latency_ms"`

	Stratum    string  `json:"stratum"` // route|status class|latency bucket
	Forced     bool    `json:"forced,omitempty"`
	InclusionP float64 `json:"inclusion_p"` // π at persist time
	Weight     float64 `json:"weight"`      // 1/π at persist time
}

// NewManifest builds a manifest shell with build info filled in.
func NewManifest(tool string, args []string) *Manifest {
	return &Manifest{
		Version: ManifestVersion,
		Tool:    tool,
		Args:    args,
		Build:   CurrentBuild(),
	}
}

// CurrentBuild reads the binary's build metadata.
func CurrentBuild() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), Revision: "devel"}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Modified = s.Value == "true"
			}
		}
	}
	return b
}

// Finalize attaches the default registry's metric snapshot, the current
// span tree and the run's concurrent timer samples to the manifest.
// Call once, after the root span's End.
func (m *Manifest) Finalize() {
	m.Metrics = Default().Snapshot()
	m.Spans = SpanTree()
	m.TimerSamples, m.TimerSamplesDropped = TimerSamples()
}

// Encode writes the manifest as indented JSON. Field order is fixed by
// the struct layout and metric order by name, so the output is
// deterministic up to durations.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: encode manifest: %w", err)
	}
	return nil
}

// WriteFile writes the manifest to path atomically: the JSON lands in
// a same-directory temp file that is fsynced and renamed over path, so
// a crash mid-write can never leave a half-written manifest where a
// complete one (or nothing) was expected.
func (m *Manifest) WriteFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("obs: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// DecodeManifest reads a manifest and checks its version. Older
// versions decode fine (the schema only grows fields); manifests from a
// newer binary are rejected — use DecodeManifestLenient to render them
// best-effort.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	m, note, err := DecodeManifestLenient(r)
	if err != nil {
		return nil, err
	}
	if note != "" {
		return nil, fmt.Errorf("obs: %s", note)
	}
	return m, nil
}

// DecodeManifestLenient reads a manifest tolerating version skew: a
// manifest written by a newer binary decodes with a non-empty note
// describing the skew instead of an error, so renderers can degrade
// gracefully. Malformed JSON and nonsensical versions still error.
func DecodeManifestLenient(r io.Reader) (m *Manifest, note string, err error) {
	m = &Manifest{}
	if err := json.NewDecoder(r).Decode(m); err != nil {
		return nil, "", fmt.Errorf("obs: decode manifest: %w", err)
	}
	if m.Version < 1 {
		return nil, "", fmt.Errorf("obs: manifest version %d is not valid", m.Version)
	}
	if m.Version > ManifestVersion {
		note = fmt.Sprintf("manifest version %d is newer than this binary reads (%d); unknown fields were dropped", m.Version, ManifestVersion)
	}
	return m, note, nil
}

// ReadManifestFile reads and decodes the manifest at path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	defer f.Close()
	return DecodeManifest(f)
}

// ReadManifestFileLenient reads the manifest at path tolerating version
// skew (see DecodeManifestLenient).
func ReadManifestFileLenient(path string) (*Manifest, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("obs: read manifest: %w", err)
	}
	defer f.Close()
	return DecodeManifestLenient(f)
}
