package obs

import (
	"sync"
	"testing"
)

func TestCollectorDisabledReturnsNil(t *testing.T) {
	Disable()
	defer Disable()
	if c := AttachCollector("req"); c != nil {
		t.Fatalf("AttachCollector while disabled = %v, want nil", c)
	}
	var c *Collector
	if got := c.Detach(); got != nil {
		t.Fatalf("nil Collector.Detach() = %v, want nil", got)
	}
}

func TestCollectorCapturesSpanTree(t *testing.T) {
	Enable()
	defer Disable()

	c := AttachCollector("req-1")
	if c == nil {
		t.Fatal("AttachCollector returned nil while enabled")
	}
	a := StartSpan("stage.a")
	aa := StartSpan("stage.a.inner")
	aa.End()
	a.End()
	b := StartSpan("stage.b")
	b.End()
	root := c.Detach()

	if root == nil || root.Name != "req-1" {
		t.Fatalf("root = %+v, want name req-1", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if root.Children[0].Name != "stage.a" || root.Children[1].Name != "stage.b" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "stage.a.inner" {
		t.Fatalf("nested child missing: %+v", root.Children[0].Children)
	}
	if root.DurNS <= 0 {
		t.Fatalf("root DurNS = %d, want > 0 (closed at detach)", root.DurNS)
	}
	// Spans after detach must not resurrect the collector's tree.
	s := StartSpan("stage.after")
	if s != nil {
		t.Fatalf("StartSpan after detach (no run, no collector) = %+v, want nil", s)
	}
}

func TestCollectorDoesNotTouchGlobalRun(t *testing.T) {
	Enable()
	defer Disable()

	run := StartRun("global-run")
	c := AttachCollector("req")
	StartSpan("req.stage").End()
	c.Detach()
	StartSpan("global.stage").End()
	run.End()

	tree := SpanTree()
	if tree == nil || tree.Name != "global-run" {
		t.Fatalf("global tree = %+v", tree)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "global.stage" {
		t.Fatalf("global children = %+v, want only global.stage", tree.Children)
	}
}

func TestCollectorConcurrentIsolation(t *testing.T) {
	Enable()
	defer Disable()

	const goroutines = 16
	roots := make([]*Span, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := AttachCollector("req")
			for j := 0; j < 8; j++ {
				s := StartSpan("stage")
				inner := StartSpan("inner")
				inner.End()
				s.End()
			}
			roots[i] = c.Detach()
		}(i)
	}
	wg.Wait()
	for i, r := range roots {
		if r == nil {
			t.Fatalf("goroutine %d: nil root", i)
		}
		if len(r.Children) != 8 {
			t.Fatalf("goroutine %d: %d children, want 8 (cross-goroutine leak?)", i, len(r.Children))
		}
	}
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count after all detached = %d, want 0", n)
	}
}

func TestCollectorDetachIdempotent(t *testing.T) {
	Enable()
	defer Disable()

	c := AttachCollector("req")
	StartSpan("stage").End()
	first := c.Detach()
	second := c.Detach()
	if first == nil || second != first {
		t.Fatalf("Detach not idempotent: first=%p second=%p", first, second)
	}
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count = %d, want 0", n)
	}
}
