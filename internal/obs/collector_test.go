package obs

import (
	"sync"
	"testing"
)

func TestCollectorDisabledReturnsNil(t *testing.T) {
	Disable()
	defer Disable()
	if c := AttachCollector("req"); c != nil {
		t.Fatalf("AttachCollector while disabled = %v, want nil", c)
	}
	var c *Collector
	if got := c.Detach(); got != nil {
		t.Fatalf("nil Collector.Detach() = %v, want nil", got)
	}
}

func TestCollectorCapturesSpanTree(t *testing.T) {
	Enable()
	defer Disable()

	c := AttachCollector("req-1")
	if c == nil {
		t.Fatal("AttachCollector returned nil while enabled")
	}
	a := StartSpan("stage.a")
	aa := StartSpan("stage.a.inner")
	aa.End()
	a.End()
	b := StartSpan("stage.b")
	b.End()
	root := c.Detach()

	if root == nil || root.Name != "req-1" {
		t.Fatalf("root = %+v, want name req-1", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if root.Children[0].Name != "stage.a" || root.Children[1].Name != "stage.b" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "stage.a.inner" {
		t.Fatalf("nested child missing: %+v", root.Children[0].Children)
	}
	if root.DurNS <= 0 {
		t.Fatalf("root DurNS = %d, want > 0 (closed at detach)", root.DurNS)
	}
	// Spans after detach must not resurrect the collector's tree.
	s := StartSpan("stage.after")
	if s != nil {
		t.Fatalf("StartSpan after detach (no run, no collector) = %+v, want nil", s)
	}
}

func TestCollectorDoesNotTouchGlobalRun(t *testing.T) {
	Enable()
	defer Disable()

	run := StartRun("global-run")
	c := AttachCollector("req")
	StartSpan("req.stage").End()
	c.Detach()
	StartSpan("global.stage").End()
	run.End()

	tree := SpanTree()
	if tree == nil || tree.Name != "global-run" {
		t.Fatalf("global tree = %+v", tree)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "global.stage" {
		t.Fatalf("global children = %+v, want only global.stage", tree.Children)
	}
}

func TestCollectorConcurrentIsolation(t *testing.T) {
	Enable()
	defer Disable()

	const goroutines = 16
	roots := make([]*Span, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := AttachCollector("req")
			for j := 0; j < 8; j++ {
				s := StartSpan("stage")
				inner := StartSpan("inner")
				inner.End()
				s.End()
			}
			roots[i] = c.Detach()
		}(i)
	}
	wg.Wait()
	for i, r := range roots {
		if r == nil {
			t.Fatalf("goroutine %d: nil root", i)
		}
		if len(r.Children) != 8 {
			t.Fatalf("goroutine %d: %d children, want 8 (cross-goroutine leak?)", i, len(r.Children))
		}
	}
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count after all detached = %d, want 0", n)
	}
}

func TestCollectorDetachIdempotent(t *testing.T) {
	Enable()
	defer Disable()

	c := AttachCollector("req")
	StartSpan("stage").End()
	first := c.Detach()
	second := c.Detach()
	if first == nil || second != first {
		t.Fatalf("Detach not idempotent: first=%p second=%p", first, second)
	}
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count = %d, want 0", n)
	}
}

func TestCurrentCollectorAndAdopt(t *testing.T) {
	Enable()
	defer Disable()

	if got := CurrentCollector(); got != nil {
		t.Fatalf("CurrentCollector with none attached = %v, want nil", got)
	}
	c := AttachCollector("req")
	if got := CurrentCollector(); got != c {
		t.Fatalf("CurrentCollector = %p, want the attached collector %p", got, c)
	}

	// Hand the collector to a worker goroutine: its spans must land in
	// the request tree, and release must restore the worker's state.
	done := make(chan struct{})
	go func() {
		defer close(done)
		release := c.Adopt()
		StartSpan("adopted.stage").End()
		release()
		if s := StartSpan("after.release"); s != nil {
			t.Errorf("StartSpan after release = %+v, want nil (no collector, no run)", s)
		}
	}()
	<-done

	root := c.Detach()
	if len(root.Children) != 1 || root.Children[0].Name != "adopted.stage" {
		t.Fatalf("adopted span missing from request tree: %+v", root.Children)
	}
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count = %d, want 0", n)
	}
}

func TestAdoptNilCollector(t *testing.T) {
	var c *Collector
	release := c.Adopt()
	release() // must be a safe no-op
}

func TestAdoptRestoresPreviousCollector(t *testing.T) {
	Enable()
	defer Disable()

	mine := AttachCollector("mine")
	theirs := &Collector{gid: -1} // synthetic collector owned elsewhere
	theirs.root = &Span{Name: "theirs", col: theirs}
	theirs.cur = theirs.root

	release := theirs.Adopt()
	if got := CurrentCollector(); got != theirs {
		t.Fatalf("CurrentCollector during adoption = %p, want %p", got, theirs)
	}
	release()
	if got := CurrentCollector(); got != mine {
		t.Fatalf("CurrentCollector after release = %p, want restored %p", got, mine)
	}
	mine.Detach()
	if n := collectors.n.Load(); n != 0 {
		t.Fatalf("collector count = %d, want 0", n)
	}
}
