package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled over a
// metric snapshot — no client library dependency. The encoder maps the
// registry's dotted names onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*), escapes help strings and label values per
// the format spec, and renders histograms as the conventional
// `_bucket`/`_sum`/`_count` triplet with cumulative `le` buckets ending
// in `+Inf`. Families (one # HELP / # TYPE header, then every child)
// fall out of the snapshot's deterministic ordering: children of a
// labeled family are adjacent and label-sorted, so the emitted text is
// byte-stable for a given snapshot — which is what the metrics-golden
// CI stage pins.

// promName maps an obs metric name onto the Prometheus metric-name
// grammar: every byte outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit gets a '_' prefix.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabelName maps a label name onto [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(name string) string {
	n := promName(name)
	return strings.ReplaceAll(n, ":", "_")
}

// promEscapeHelp escapes a HELP line: backslash and newline.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value: backslash, double quote and
// newline.
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a sample value: shortest round-trip float, with the
// IEEE specials spelled the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLE renders a bucket bound; the snapshot's MaxFloat64 stand-in for
// the overflow bucket becomes +Inf.
func promLE(le float64) string {
	if le >= infLE {
		return "+Inf"
	}
	return promFloat(le)
}

// writeLabels renders `{k="v",...}` (or nothing for an unlabeled
// metric). extra appends one synthetic pair (the histogram le label).
func writeLabels(w *bufio.Writer, labels []LabelPair, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, p := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(promLabelName(p.Name))
		w.WriteString(`="`)
		w.WriteString(promEscapeLabel(p.Value))
		w.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(promEscapeLabel(extraValue))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus encodes a metric snapshot (as produced by
// Registry.Snapshot) in the Prometheus text exposition format. Metrics
// sharing a name and kind form one family: HELP and TYPE are emitted
// once, then every child in snapshot order.
func WritePrometheus(w io.Writer, metrics []Metric) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, m := range metrics {
		name := promName(m.Name)
		family := name + "\x00" + m.Kind
		if family != prevFamily {
			prevFamily = family
			bw.WriteString("# HELP ")
			bw.WriteString(name)
			if m.Help != "" {
				bw.WriteByte(' ')
				bw.WriteString(promEscapeHelp(m.Help))
			}
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(name)
			bw.WriteByte(' ')
			switch m.Kind {
			case "counter", "gauge", "histogram":
				bw.WriteString(m.Kind)
			default:
				bw.WriteString("untyped")
			}
			bw.WriteByte('\n')
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				bw.WriteString(name)
				bw.WriteString("_bucket")
				writeLabels(bw, m.Labels, "le", promLE(b.LE))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(b.Count, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(name)
			bw.WriteString("_sum")
			writeLabels(bw, m.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(promFloat(m.Sum))
			bw.WriteByte('\n')
			bw.WriteString(name)
			bw.WriteString("_count")
			writeLabels(bw, m.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(promFloat(m.Value))
			bw.WriteByte('\n')
		default:
			bw.WriteString(name)
			writeLabels(bw, m.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(promFloat(m.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
