// Package core is SimProf's top-level pipeline (Fig. 2): thread
// profiling of a workload on the simulated machine, phase formation,
// phase sampling, and the input sensitivity test, behind one
// configuration struct. It is the API the cmd tools, the examples and
// the experiment harness all drive.
//
// Typical use:
//
//	cfg := core.DefaultConfig()
//	tr, _ := core.ProfileWorkload("wc", "spark", input, wopts, cfg)
//	ph, _ := core.FormPhases(tr, cfg)
//	sp, _ := core.SelectPoints(ph, 20, cfg)
//	fmt.Println(sp.EstCPI, sp.CI(0.997))
package core

import (
	"context"
	"fmt"

	"simprof/internal/cpu"
	"simprof/internal/obs"
	"simprof/internal/phase"
	"simprof/internal/profiler"
	"simprof/internal/sampling"
	"simprof/internal/sensitivity"
	"simprof/internal/stats"
	"simprof/internal/synth"
	"simprof/internal/trace"
	"simprof/internal/workloads"
)

// Config carries the knobs of the whole pipeline.
type Config struct {
	Machine  cpu.Config
	Profiler profiler.Config
	Phase    phase.Options
	// Confidence is the level used for reported intervals (paper: 0.997).
	Confidence float64
	Seed       uint64
	// Workers bounds the concurrency of the compute kernels (phase
	// formation's k sweep, k-means restarts, silhouette passes and the
	// experiment driver). 0 selects GOMAXPROCS; 1 runs serially. Every
	// setting yields bit-for-bit identical results — the knob trades
	// wall clock, never reproducibility.
	Workers int
}

// DefaultConfig mirrors the paper's setup at the repository's scaled-
// down unit size (10M-instruction units, 1M-instruction snapshots —
// a 1:10 scale of the paper's 100M/10M; populations keep the same
// shape at a fraction of the wall-clock cost).
func DefaultConfig() Config {
	m := cpu.DefaultConfig()
	return Config{
		Machine: m,
		Profiler: profiler.Config{
			UnitInstr:     10_000_000,
			SnapshotEvery: 1_000_000,
		},
		Phase:      phase.Options{},
		Confidence: 0.997,
		Seed:       1,
	}
}

// ProfileWorkload builds a Table I workload on a framework, executes it
// on the simulated machine and collects the profiling trace. Hadoop
// traces are merged per core automatically (§III-A).
func ProfileWorkload(bench, framework string, in synth.InputStats, wopts workloads.Options, cfg Config) (*trace.Trace, error) {
	span := obs.StartSpan("core.profile " + bench + "_" + framework)
	defer span.End()
	wopts.Seed = cfg.Seed
	threads, table, err := workloads.Build(bench, framework, in, wopts)
	if err != nil {
		return nil, fmt.Errorf("core: build %s_%s: %w", bench, framework, err)
	}
	mcfg := cfg.Machine
	mcfg.Seed = stats.SplitSeed(cfg.Seed, 0x3ac1)
	machine, err := cpu.NewMachine(mcfg)
	if err != nil {
		return nil, err
	}
	res, err := machine.Run(threads)
	if err != nil {
		return nil, fmt.Errorf("core: run %s_%s: %w", bench, framework, err)
	}
	pcfg := cfg.Profiler
	pcfg.MergePerCore = framework == "hadoop"
	tr, err := profiler.Collect(res, table, pcfg)
	if err != nil {
		return nil, fmt.Errorf("core: profile %s_%s: %w", bench, framework, err)
	}
	tr.Benchmark = bench
	tr.Framework = framework
	tr.Input = in.Name
	tr.Seed = cfg.Seed
	return tr, nil
}

// FormPhases runs phase formation on a trace.
func FormPhases(tr *trace.Trace, cfg Config) (*phase.Phases, error) {
	return FormPhasesCtx(context.Background(), tr, cfg)
}

// FormPhasesCtx is FormPhases under a context: once ctx ends the
// formation kernels stop claiming work and the context error is
// returned (see phase.FormCtx).
func FormPhasesCtx(ctx context.Context, tr *trace.Trace, cfg Config) (*phase.Phases, error) {
	opts := cfg.Phase
	if opts.Seed == 0 {
		opts.Seed = stats.SplitSeed(cfg.Seed, 0xc1)
	}
	if opts.Workers == 0 {
		opts.Workers = cfg.Workers
	}
	return phase.FormCtx(ctx, tr, opts)
}

// SelectPoints draws SimProf's stratified sample of n simulation points.
func SelectPoints(ph *phase.Phases, n int, cfg Config) (sampling.Stratified, error) {
	return sampling.SimProf(ph, n, stats.SplitSeed(cfg.Seed, 0x5e1))
}

// SelectPointsCtx is SelectPoints under a context (see
// sampling.SimProfCtx).
func SelectPointsCtx(ctx context.Context, ph *phase.Phases, n int, cfg Config) (sampling.Stratified, error) {
	return sampling.SimProfCtx(ctx, ph, n, stats.SplitSeed(cfg.Seed, 0x5e1))
}

// InputSensitivity profiles each reference input with the same workload
// and runs the input sensitivity test against the training phases.
func InputSensitivity(bench, framework string, ph *phase.Phases, refs []synth.InputStats, wopts workloads.Options, cfg Config) (*sensitivity.Report, error) {
	var traces []*trace.Trace
	for _, in := range refs {
		tr, err := ProfileWorkload(bench, framework, in, wopts, cfg)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return sensitivity.Test(ph, traces, sensitivity.DefaultThreshold)
}
