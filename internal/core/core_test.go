package core

import (
	"testing"

	"simprof/internal/sampling"
	"simprof/internal/synth"
	"simprof/internal/workloads"
)

// smallOpts keeps the integration runs fast.
func smallOpts() workloads.Options {
	return workloads.Options{
		Cores: 4, TextBytes: 48 << 20, SortBytes: 64 << 20,
		GraphScale: 15, GraphEdgeFactor: 12,
		SparkIterations: 5, HadoopIterations: 2,
	}
}

func TestProfileWorkloadEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	in, err := workloads.DefaultInput("wc", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ProfileWorkload("wc", "spark", in, smallOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "wc_sp" {
		t.Fatalf("Name=%q", tr.Name())
	}
	if len(tr.Units) < 50 {
		t.Fatalf("only %d units", len(tr.Units))
	}
	if tr.OracleCPI() < 0.3 || tr.OracleCPI() > 10 {
		t.Fatalf("implausible oracle CPI %v", tr.OracleCPI())
	}
}

func TestFullPipelineSimProfBeatsSRS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 4
	in, _ := workloads.DefaultInput("wc", smallOpts())
	tr, err := ProfileWorkload("wc", "hadoop", in, smallOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := FormPhases(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ph.K < 2 {
		t.Fatalf("wc_hp should have several phases, got %d", ph.K)
	}
	cov := ph.CoV()
	if cov.Weighted >= cov.Population {
		t.Fatalf("phase formation failed: weighted CoV %v ≥ population %v",
			cov.Weighted, cov.Population)
	}
	// Mean error over repeated draws: stratified must beat SRS.
	var srsErr, spErr float64
	const reps = 15
	for r := 0; r < reps; r++ {
		s, err := sampling.SRS(tr, 20, uint64(1000+r))
		if err != nil {
			t.Fatal(err)
		}
		srsErr += s.Err(tr)
		cfg2 := cfg
		cfg2.Seed = uint64(2000 + r)
		sp, err := SelectPoints(ph, 20, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		spErr += sp.Err(tr)
	}
	if spErr >= srsErr {
		t.Fatalf("SimProf mean error %v not below SRS %v", spErr/reps, srsErr/reps)
	}
}

func TestProfileDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 6
	in, _ := workloads.DefaultInput("grep", smallOpts())
	a, err := ProfileWorkload("grep", "spark", in, smallOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileWorkload("grep", "spark", in, smallOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Units) != len(b.Units) {
		t.Fatal("unit counts differ across identical runs")
	}
	for i := range a.Units {
		if a.Units[i].Counters != b.Units[i].Counters {
			t.Fatalf("unit %d counters differ", i)
		}
	}
}

func TestInputSensitivityEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 8
	opts := smallOpts()
	// Scale 19 puts the vertex indexes near the LLC boundary, where
	// structural (skew) differences between inputs become visible.
	inputs := synth.TableIIStats(19, 5)
	train := inputs[0]
	refs := []synth.InputStats{inputs[1], inputs[len(inputs)-1]} // facebook + road
	tr, err := ProfileWorkload("cc", "spark", train, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := FormPhases(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := InputSensitivity("cc", "spark", ph, refs, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sens, insens := rep.Counts()
	if sens+insens != ph.K {
		t.Fatalf("counts %d+%d != K=%d", sens, insens, ph.K)
	}
	if sens == 0 {
		t.Fatal("graph workload with road vs web inputs should have sensitive phases")
	}
	if insens == 0 {
		t.Fatal("sequential scan phases should be input-insensitive")
	}
}

func TestProfileWorkloadErrors(t *testing.T) {
	cfg := DefaultConfig()
	in, _ := workloads.DefaultInput("wc", smallOpts())
	if _, err := ProfileWorkload("nope", "spark", in, smallOpts(), cfg); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}
