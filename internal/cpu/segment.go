package cpu

import "simprof/internal/model"

// Segment is the unit of simulated execution: a run of instructions
// retired under one call stack with one memory-access behaviour. Engines
// (internal/spark, internal/hadoop) compile tasks into segment lists.
type Segment struct {
	Stack   model.Stack // call stack active for the whole segment
	Instr   uint64      // instructions retired
	BaseCPI float64     // CPI with all loads hitting L1
	Access  Access
	TaskID  int // engine task that produced the segment
	StageID int // engine stage (−1 when not applicable)
}

// Thread is one executor thread: an ordered list of segments. In Spark a
// thread spans the whole job; in Hadoop a thread spans a single task and
// the profiler later merges threads per core (§III-A).
type Thread struct {
	ID       int
	Name     string
	Segments []Segment
}

// Instructions returns the total instructions of the thread.
func (t *Thread) Instructions() uint64 {
	var n uint64
	for _, s := range t.Segments {
		n += s.Instr
	}
	return n
}

// SegExec is the execution record of one segment on the machine.
type SegExec struct {
	Seg        *Segment
	Core       int
	StartCycle uint64
	Cycles     uint64
	CPI        float64
	L1Misses   uint64
	L2Misses   uint64
	LLCMisses  uint64
}

// ThreadExec is the execution record of one thread.
type ThreadExec struct {
	Thread *Thread
	Core   int // core the thread started on
	Exec   []SegExec
}

// Result is the outcome of Machine.Run.
type Result struct {
	Threads     []ThreadExec
	TotalCycles uint64 // wall-clock cycles (max over cores)
	Migrations  int
}
