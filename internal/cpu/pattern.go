// Package cpu is the simulated multicore machine SimProf profiles. It
// stands in for the paper's Intel i7-4820K + perf_event: execution
// engines emit per-thread instruction segments annotated with call stacks
// and memory-access descriptors, and the machine turns them into cycles
// and cache-miss counters using an analytic cache model (calibrated
// against the exact simulator in internal/cachesim).
//
// The model deliberately reproduces the paper's four sources of
// intra-phase performance variation (§III-B.1):
//
//   - data access pattern — miss rates depend on per-segment working sets
//     (quicksort's shrinking partitions, reduce's random probes);
//   - OS scheduling — threads occasionally migrate and pay a decaying
//     cold-cache penalty;
//   - phase interleaving — co-running memory-intensive segments shrink
//     the effective shared-LLC capacity seen by each core;
//   - executed-code difference — engines emit different stacks/costs for
//     different records within one logical operation.
package cpu

import "math"

// PatternKind describes the shape of a segment's memory accesses.
type PatternKind uint8

// Access pattern kinds.
const (
	PatternNone       PatternKind = iota // compute only, negligible memory traffic
	PatternSequential                    // linear scan (stride ≤ line)
	PatternRandom                        // uniform probes over the working set
	PatternStrided                       // large-stride walk (one line per access)
	PatternSawtooth                      // quicksort-style oscillating working set
)

var patternNames = [...]string{"none", "sequential", "random", "strided", "sawtooth"}

// String returns the lower-case pattern name.
func (p PatternKind) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return "pattern(?)"
}

// Access describes the memory behaviour of one segment.
type Access struct {
	Kind       PatternKind
	WorkingSet uint64  // bytes touched by the segment's loop
	Refs       float64 // memory references per instruction (0.3 is typical)
	Depth      float64 // PatternSawtooth only: recursion depth fraction in [0,1]
}

// EffectiveWorkingSet resolves the sawtooth depth into the working set
// actually live during the segment.
func (a Access) EffectiveWorkingSet() uint64 {
	if a.Kind != PatternSawtooth {
		return a.WorkingSet
	}
	// Depth 0 → whole array; depth 1 → smallest (1/1024) partition.
	shift := uint(math.Round(a.Depth * 10))
	ws := a.WorkingSet >> shift
	if ws < 1<<12 {
		ws = 1 << 12
	}
	return ws
}

// CacheSpec sizes one cache level of the analytic hierarchy.
type CacheSpec struct {
	SizeBytes uint64
	LineBytes uint64
}

// residualMissRate is the ceiling of the floor miss rate for
// cache-resident working sets (cold lines, conflict noise). The actual
// residual scales with how much of the cache the working set occupies, so
// a tiny buffer in a huge cache contributes essentially nothing.
const residualMissRate = 0.002

// MissRate estimates the fraction of references that miss a cache of
// this spec, given the access descriptor. It is the analytic counterpart
// of driving internal/cachesim with the matching stream generator; the
// calibration test in machine_test.go keeps the two in agreement.
func (c CacheSpec) MissRate(a Access) float64 {
	if a.Kind == PatternNone || a.Refs == 0 {
		return 0
	}
	ws := a.EffectiveWorkingSet()
	if ws <= c.SizeBytes {
		return residualMissRate * float64(ws) / float64(c.SizeBytes)
	}
	switch a.Kind {
	case PatternSequential, PatternSawtooth:
		// A cyclic sweep larger than the cache defeats LRU entirely:
		// every line is evicted before reuse, so each new line is a
		// miss. With an 8-byte element stride that is stride/line of
		// the references.
		const elementStride = 8
		return float64(elementStride) / float64(c.LineBytes)
	case PatternRandom:
		// A uniform probe hits iff its line is resident; steady state
		// keeps cap/ws of the set resident.
		return 1 - float64(c.SizeBytes)/float64(ws)
	case PatternStrided:
		// One line per access, no reuse before eviction.
		return 1
	default:
		return 0
	}
}

// Hierarchy is the analytic three-level cache model.
type Hierarchy struct {
	L1, L2, LLC CacheSpec
	// Penalties are additional cycles per reference serviced by that
	// level (or memory), on top of the L1-hit cost folded into BaseCPI.
	PenaltyL2, PenaltyLLC, PenaltyMem float64
}

// DefaultHierarchy models the paper's testbed (Ivy Bridge-E class:
// 32KB L1D, 256KB L2, 10MB shared LLC, DDR3 memory).
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		L1:         CacheSpec{32 << 10, 64},
		L2:         CacheSpec{256 << 10, 64},
		LLC:        CacheSpec{10 << 20, 64},
		PenaltyL2:  12,
		PenaltyLLC: 40,
		PenaltyMem: 220,
	}
}

// MissProfile is the per-level breakdown of an access descriptor.
type MissProfile struct {
	L1, L2, LLC float64 // global miss rates per reference
}

// Misses computes the global miss rate at each level, optionally with
// the LLC capacity scaled down by contention (llcShare in (0,1]).
func (h Hierarchy) Misses(a Access, llcShare float64) MissProfile {
	llc := h.LLC
	if llcShare > 0 && llcShare < 1 {
		llc.SizeBytes = uint64(float64(llc.SizeBytes) * llcShare)
		if llc.SizeBytes < llc.LineBytes {
			llc.SizeBytes = llc.LineBytes
		}
	}
	m := MissProfile{L1: h.L1.MissRate(a), L2: h.L2.MissRate(a), LLC: llc.MissRate(a)}
	// Global rates must be monotone non-increasing down the hierarchy.
	m.L2 = math.Min(m.L2, m.L1)
	m.LLC = math.Min(m.LLC, m.L2)
	return m
}

// PrefetchFactor returns the fraction of miss latency the hardware
// prefetchers fail to hide for this access pattern: streaming scans are
// almost fully covered, strided walks partially, random probes not at
// all. Without this, every scan over a large input would be
// memory-bound, which is not what the paper's IPC profiles show.
func PrefetchFactor(k PatternKind) float64 {
	switch k {
	case PatternSequential:
		return 0.15
	case PatternSawtooth:
		return 0.2
	case PatternStrided:
		return 0.45
	default:
		return 1.0
	}
}

// StallCPI converts a miss profile into stall cycles per instruction,
// accounting for prefetch coverage of the access pattern.
func (h Hierarchy) StallCPI(a Access, m MissProfile) float64 {
	if a.Refs == 0 {
		return 0
	}
	servedL2 := m.L1 - m.L2
	servedLLC := m.L2 - m.LLC
	servedMem := m.LLC
	pf := PrefetchFactor(a.Kind)
	return a.Refs * pf * (servedL2*h.PenaltyL2 + servedLLC*h.PenaltyLLC + servedMem*h.PenaltyMem)
}

// MemIntensity estimates the fraction of a segment's time spent waiting
// on memory.
func (h Hierarchy) MemIntensity(a Access, baseCPI float64) float64 {
	m := h.Misses(a, 1)
	stall := a.Refs * m.LLC * h.PenaltyMem
	total := baseCPI + h.StallCPI(a, m)
	if total <= 0 {
		return 0
	}
	v := stall / total
	if v > 1 {
		v = 1
	}
	return v
}

// LLCFootprint is the LLC capacity a segment demands: its effective
// working set, clamped to the LLC size. Segments with no memory traffic
// demand nothing, and streaming sweeps larger than the LLC demand only a
// residual buffer share — their lines are evicted before reuse anyway,
// so they neither benefit from nor meaningfully deprive others of LLC
// capacity (real LLCs protect against such scans with DRRIP-style
// policies). Co-running footprints divide the shared LLC, which is how
// the machine models the paper's "phase interleaving" variance: two 8MB
// hash maps cannot both live in a 10MB LLC even though each fits alone.
func (h Hierarchy) LLCFootprint(a Access) float64 {
	if a.Kind == PatternNone || a.Refs == 0 {
		return 0
	}
	ws := a.EffectiveWorkingSet()
	if ws > h.LLC.SizeBytes {
		switch a.Kind {
		case PatternSequential, PatternSawtooth, PatternStrided:
			return float64(h.LLC.SizeBytes) / 16
		default:
			return float64(h.LLC.SizeBytes)
		}
	}
	return float64(ws)
}
