package cpu

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"simprof/internal/stats"
)

// Config parameterizes the machine.
type Config struct {
	Cores int
	// Nodes splits the cores across that many cluster nodes: the shared
	// LLC (and therefore contention) and OS migrations are per-node,
	// which is how the scale-out deployments the paper targets behave.
	// 0 or 1 means a single node.
	Nodes int
	Hier  Hierarchy

	// MigrationRate is the per-segment probability that the OS migrates
	// the thread to another core, leaving its cache state behind.
	MigrationRate float64
	// ColdPenaltyCPI is the extra CPI paid immediately after a
	// migration; it decays linearly over ColdDecayInstr instructions.
	ColdPenaltyCPI float64
	ColdDecayInstr uint64

	// ContentionScale weights co-running cores' LLC footprints when
	// dividing the shared LLC: share = mine/(mine + scale·Σ others).
	// 0 disables contention; 1 is fair capacity partitioning.
	ContentionScale float64

	// NoiseCoV is the coefficient of variation of the multiplicative
	// log-normal CPI jitter applied per segment.
	NoiseCoV float64

	Seed uint64
}

// DefaultConfig returns a 4-core machine resembling the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Cores:           4,
		Hier:            DefaultHierarchy(),
		MigrationRate:   0.003,
		ColdPenaltyCPI:  0.45,
		ColdDecayInstr:  30_000_000,
		ContentionScale: 0.4,
		NoiseCoV:        0.02,
		Seed:            1,
	}
}

// Machine executes threads on simulated cores.
type Machine struct {
	cfg Config
	rng *rand.Rand
}

// NewMachine builds a machine; it returns an error for nonsensical
// configurations.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpu: Cores=%d must be positive", cfg.Cores)
	}
	if cfg.MigrationRate < 0 || cfg.MigrationRate > 1 {
		return nil, fmt.Errorf("cpu: MigrationRate=%v out of [0,1]", cfg.MigrationRate)
	}
	if cfg.Nodes < 0 {
		return nil, fmt.Errorf("cpu: Nodes=%d must be non-negative", cfg.Nodes)
	}
	if cfg.Nodes > 1 && cfg.Cores%cfg.Nodes != 0 {
		return nil, fmt.Errorf("cpu: Cores=%d not divisible across Nodes=%d", cfg.Cores, cfg.Nodes)
	}
	return &Machine{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// node returns the cluster node a core belongs to.
func (m *Machine) node(core int) int {
	if m.cfg.Nodes <= 1 {
		return 0
	}
	return core / (m.cfg.Cores / m.cfg.Nodes)
}

// coreState tracks what a core last executed, for contention lookups.
type coreState struct {
	id        int
	time      uint64 // next free cycle
	queue     []*threadState
	lastStart uint64
	lastEnd   uint64
	lastInten float64
}

type threadState struct {
	t         *Thread
	exec      []SegExec
	next      int // next segment index
	coldLeft  uint64
	startCore int
}

// coreHeap orders cores by their next free time (stable by id).
type coreHeap []*coreState

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h coreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)   { *h = append(*h, x.(*coreState)) }
func (h *coreHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Run executes the threads to completion and returns per-segment
// execution records. Threads are assigned to cores round-robin; a core
// runs its threads one segment at a time in round-robin order, which
// interleaves concurrent executor threads the way a timesharing OS
// would. Execution is deterministic for a given Config.
func (m *Machine) Run(threads []*Thread) (Result, error) {
	if len(threads) == 0 {
		return Result{}, fmt.Errorf("cpu: no threads to run")
	}
	cores := make([]*coreState, m.cfg.Cores)
	for i := range cores {
		cores[i] = &coreState{id: i}
	}
	states := make([]*threadState, len(threads))
	for i, t := range threads {
		st := &threadState{t: t, startCore: i % m.cfg.Cores, exec: make([]SegExec, 0, len(t.Segments))}
		states[i] = st
		cores[st.startCore].queue = append(cores[st.startCore].queue, st)
	}

	h := make(coreHeap, 0, len(cores))
	for _, c := range cores {
		if len(c.queue) > 0 {
			h = append(h, c)
		}
	}
	heap.Init(&h)

	migrations := 0
	var maxTime uint64
	for h.Len() > 0 {
		c := heap.Pop(&h).(*coreState)
		ts := c.nextThread()
		if ts == nil {
			if c.time > maxTime {
				maxTime = c.time
			}
			continue // core drained
		}
		seg := &ts.t.Segments[ts.next]
		ts.next++

		// Contention: LLC footprints of segments still executing on
		// other cores *of the same node* at this instant compete with
		// ours for capacity.
		var others float64
		for _, o := range cores {
			if o == c || m.node(o.id) != m.node(c.id) ||
				o.lastEnd <= c.time || o.lastStart > c.time {
				continue
			}
			others += o.lastInten
		}
		share := 1.0
		mine := m.cfg.Hier.LLCFootprint(seg.Access)
		if m.cfg.ContentionScale > 0 && others > 0 && mine > 0 {
			share = mine / (mine + m.cfg.ContentionScale*others)
		}

		rec := m.execSegment(ts, seg, c, share)
		ts.exec = append(ts.exec, rec)

		c.lastStart = c.time
		c.time += rec.Cycles
		c.lastEnd = c.time
		c.lastInten = mine

		// OS migration: the thread is moved to another core and loses
		// its cache affinity. The cold penalty models the refill cost.
		if m.cfg.MigrationRate > 0 && m.rng.Float64() < m.cfg.MigrationRate && m.cfg.Cores > 1 {
			ts.coldLeft = m.cfg.ColdDecayInstr
			migrations++
			// The OS only migrates within the node.
			perNode := m.cfg.Cores
			if m.cfg.Nodes > 1 {
				perNode = m.cfg.Cores / m.cfg.Nodes
			}
			dst := cores[m.node(c.id)*perNode+m.rng.IntN(perNode)]
			if dst != c {
				c.removeThread(ts)
				dst.queue = append(dst.queue, ts)
				// Preserve per-thread causality: the migrated thread
				// cannot resume before the cycle it was preempted at.
				if dst.time < c.time {
					dst.time = c.time
				}
				if !inHeap(h, dst) {
					heap.Push(&h, dst)
				}
			}
		}
		if c.hasWork() {
			heap.Push(&h, c)
		} else if c.time > maxTime {
			maxTime = c.time
		}
	}

	res := Result{Migrations: migrations, TotalCycles: maxTime}
	for _, st := range states {
		res.Threads = append(res.Threads, ThreadExec{Thread: st.t, Core: st.startCore, Exec: st.exec})
	}
	return res, nil
}

func inHeap(h coreHeap, c *coreState) bool {
	for _, x := range h {
		if x == c {
			return true
		}
	}
	return false
}

// nextThread returns the next runnable thread on the core. Threads run
// to completion in queue order (FIFO), matching how a Hadoop task slot
// executes one task at a time; Spark assigns one long-lived executor
// thread per core, so the policy is irrelevant there.
func (c *coreState) nextThread() *threadState {
	for _, ts := range c.queue {
		if ts.next < len(ts.t.Segments) {
			return ts
		}
	}
	return nil
}

func (c *coreState) hasWork() bool {
	for _, ts := range c.queue {
		if ts.next < len(ts.t.Segments) {
			return true
		}
	}
	return false
}

func (c *coreState) removeThread(ts *threadState) {
	for i, x := range c.queue {
		if x == ts {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// execSegment computes the cycles and counters of one segment.
func (m *Machine) execSegment(ts *threadState, seg *Segment, c *coreState, llcShare float64) SegExec {
	miss := m.cfg.Hier.Misses(seg.Access, llcShare)
	cpi := seg.BaseCPI + m.cfg.Hier.StallCPI(seg.Access, miss)

	// Decaying cold-cache penalty after a migration.
	if ts.coldLeft > 0 {
		covered := min(ts.coldLeft, seg.Instr)
		frac := float64(covered) / float64(seg.Instr)
		// Average penalty over the covered span decays linearly.
		avg := m.cfg.ColdPenaltyCPI * float64(ts.coldLeft) / float64(m.cfg.ColdDecayInstr)
		cpi += avg * frac
		ts.coldLeft -= covered
	}

	if m.cfg.NoiseCoV > 0 {
		cpi = stats.LogNormal(m.rng, cpi, m.cfg.NoiseCoV)
	}
	if cpi < 0.1 {
		cpi = 0.1
	}

	refs := float64(seg.Instr) * seg.Access.Refs
	return SegExec{
		Seg:        seg,
		Core:       c.id,
		StartCycle: c.time,
		Cycles:     uint64(float64(seg.Instr) * cpi),
		CPI:        cpi,
		L1Misses:   uint64(refs * miss.L1),
		L2Misses:   uint64(refs * miss.L2),
		LLCMisses:  uint64(refs * miss.LLC),
	}
}
