package cpu

import (
	"math"
	"testing"

	"simprof/internal/cachesim"
	"simprof/internal/model"
	"simprof/internal/stats"
)

func seqAccess(ws uint64) Access {
	return Access{Kind: PatternSequential, WorkingSet: ws, Refs: 0.3}
}

func randAccess(ws uint64) Access {
	return Access{Kind: PatternRandom, WorkingSet: ws, Refs: 0.3}
}

func TestMissRateMonotoneInWorkingSet(t *testing.T) {
	spec := CacheSpec{256 << 10, 64}
	prev := -1.0
	for ws := uint64(16 << 10); ws <= 64<<20; ws *= 2 {
		mr := spec.MissRate(randAccess(ws))
		if mr < prev-1e-12 {
			t.Fatalf("miss rate decreased at ws=%d: %v < %v", ws, mr, prev)
		}
		prev = mr
	}
	if spec.MissRate(randAccess(16<<10)) > 0.01 {
		t.Fatal("resident working set should have ~0 miss rate")
	}
	if spec.MissRate(randAccess(64<<20)) < 0.9 {
		t.Fatal("huge working set should have ~1 miss rate")
	}
}

func TestMissRatePatternShapes(t *testing.T) {
	spec := CacheSpec{32 << 10, 64}
	big := uint64(1 << 20)
	if got := spec.MissRate(seqAccess(big)); math.Abs(got-0.125) > 1e-9 {
		t.Fatalf("sequential over-capacity miss=%v want 0.125 (8B/64B)", got)
	}
	if got := spec.MissRate(Access{Kind: PatternStrided, WorkingSet: big, Refs: 0.3}); got != 1 {
		t.Fatalf("strided over-capacity miss=%v want 1", got)
	}
	if got := spec.MissRate(Access{Kind: PatternNone}); got != 0 {
		t.Fatalf("no-pattern miss=%v want 0", got)
	}
}

func TestSawtoothDepthShrinksWorkingSet(t *testing.T) {
	a := Access{Kind: PatternSawtooth, WorkingSet: 64 << 20, Refs: 0.3}
	a.Depth = 0
	top := a.EffectiveWorkingSet()
	a.Depth = 1
	bottom := a.EffectiveWorkingSet()
	if top != 64<<20 {
		t.Fatalf("depth 0 ws=%d", top)
	}
	if bottom >= top || bottom < 1<<12 {
		t.Fatalf("depth 1 ws=%d", bottom)
	}
}

// TestAnalyticModelMatchesExactSimulator calibrates the analytic miss
// model against the set-associative LRU simulator on the three core
// patterns. We only require regime agreement (resident ≈ 0, thrashing
// close), not per-point equality.
func TestAnalyticModelMatchesExactSimulator(t *testing.T) {
	spec := CacheSpec{256 << 10, 64}
	exact := func(s cachesim.Stream) float64 {
		c := cachesim.New(cachesim.Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8})
		for i := 0; i < 60000; i++ { // warm
			c.Access(s.Next())
		}
		warm := c.Stats()
		for i := 0; i < 200000; i++ {
			c.Access(s.Next())
		}
		st := c.Stats()
		return float64(st.Misses-warm.Misses) / float64(st.Accesses-warm.Accesses)
	}
	cases := []struct {
		name   string
		stream cachesim.Stream
		access Access
		tol    float64
	}{
		{"seq-resident", &cachesim.SequentialStream{Size: 64 << 10, Stride: 8}, seqAccess(64 << 10), 0.01},
		{"seq-thrash", &cachesim.SequentialStream{Size: 4 << 20, Stride: 8}, seqAccess(4 << 20), 0.02},
		{"rand-resident", cachesim.NewRandomStream(0, 128<<10, 3), randAccess(128 << 10), 0.01},
		{"rand-2x", cachesim.NewRandomStream(0, 512<<10, 4), randAccess(512 << 10), 0.06},
		{"rand-8x", cachesim.NewRandomStream(0, 2<<20, 5), randAccess(2 << 20), 0.06},
	}
	for _, c := range cases {
		got := spec.MissRate(c.access)
		want := exact(c.stream)
		if math.Abs(got-want) > c.tol {
			t.Errorf("%s: analytic=%v exact=%v (tol %v)", c.name, got, want, c.tol)
		}
	}
}

func TestHierarchyMonotoneAndStall(t *testing.T) {
	h := DefaultHierarchy()
	m := h.Misses(randAccess(1<<20), 1)
	if m.L1 < m.L2 || m.L2 < m.LLC {
		t.Fatalf("global miss rates not monotone: %+v", m)
	}
	// 1MB fits the LLC: stalls should come from L2/LLC only.
	if m.LLC > 0.01 {
		t.Fatalf("1MB working set LLC miss=%v", m.LLC)
	}
	stall := h.StallCPI(randAccess(1<<20), m)
	if stall <= 0 {
		t.Fatal("expected positive stall CPI")
	}
	// Shrinking the LLC share turns LLC hits into memory misses.
	mShared := h.Misses(randAccess(8<<20), 0.25)
	mAlone := h.Misses(randAccess(8<<20), 1)
	if mShared.LLC <= mAlone.LLC {
		t.Fatalf("contention did not raise LLC misses: %v <= %v", mShared.LLC, mAlone.LLC)
	}
}

func TestMemIntensityBounds(t *testing.T) {
	h := DefaultHierarchy()
	lo := h.MemIntensity(seqAccess(4<<10), 0.5)
	hi := h.MemIntensity(randAccess(256<<20), 0.5)
	if lo < 0 || hi > 1 {
		t.Fatalf("intensity out of bounds: %v %v", lo, hi)
	}
	if hi <= lo {
		t.Fatalf("memory-bound intensity %v not above compute-bound %v", hi, lo)
	}
}

// buildThread makes a thread of n identical segments.
func buildThread(id int, n int, instr uint64, base float64, a Access, stack model.Stack) *Thread {
	t := &Thread{ID: id, Name: "exec"}
	for i := 0; i < n; i++ {
		t.Segments = append(t.Segments, Segment{Stack: stack, Instr: instr, BaseCPI: base, Access: a, StageID: 0})
	}
	return t
}

func TestMachineRunBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationRate = 0
	cfg.NoiseCoV = 0
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stack := model.Stack{0, 1}
	th := buildThread(0, 10, 1_000_000, 0.6, seqAccess(4<<10), stack)
	res, err := m.Run([]*Thread{th})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 1 || len(res.Threads[0].Exec) != 10 {
		t.Fatalf("exec records: %+v", len(res.Threads[0].Exec))
	}
	for _, rec := range res.Threads[0].Exec {
		// Resident sequential: CPI ≈ base.
		if math.Abs(rec.CPI-0.6) > 0.01 {
			t.Fatalf("CPI=%v want ≈0.6", rec.CPI)
		}
	}
	if res.TotalCycles == 0 {
		t.Fatal("TotalCycles not set")
	}
	// Start cycles are monotone within the thread.
	var prev uint64
	for _, rec := range res.Threads[0].Exec {
		if rec.StartCycle < prev {
			t.Fatal("start cycles not monotone")
		}
		prev = rec.StartCycle + rec.Cycles
	}
}

func TestMachineMemoryBoundSlower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationRate, cfg.NoiseCoV = 0, 0
	m, _ := NewMachine(cfg)
	fast := buildThread(0, 5, 1_000_000, 0.6, seqAccess(4<<10), model.Stack{0})
	slow := buildThread(1, 5, 1_000_000, 0.6, randAccess(64<<20), model.Stack{0})
	res, err := m.Run([]*Thread{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[1].Exec[0].CPI < 3*res.Threads[0].Exec[0].CPI {
		t.Fatalf("memory-bound CPI %v not ≫ compute CPI %v",
			res.Threads[1].Exec[0].CPI, res.Threads[0].Exec[0].CPI)
	}
	if res.Threads[1].Exec[0].LLCMisses == 0 {
		t.Fatal("memory-bound segment recorded no LLC misses")
	}
}

func TestMachineInterference(t *testing.T) {
	// One LLC-heavy thread per core raises everyone's CPI versus
	// running alone.
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.MigrationRate, cfg.NoiseCoV = 0, 0
	alone, _ := NewMachine(cfg)
	a := buildThread(0, 50, 1_000_000, 0.6, randAccess(8<<20), model.Stack{0})
	resAlone, _ := alone.Run([]*Thread{a})

	together, _ := NewMachine(cfg)
	a2 := buildThread(0, 50, 1_000_000, 0.6, randAccess(8<<20), model.Stack{0})
	b2 := buildThread(1, 50, 1_000_000, 0.6, randAccess(8<<20), model.Stack{0})
	resTogether, _ := together.Run([]*Thread{a2, b2})

	cpiAlone := meanCPI(resAlone.Threads[0].Exec)
	cpiTogether := meanCPI(resTogether.Threads[0].Exec)
	if cpiTogether <= cpiAlone*1.02 {
		t.Fatalf("interference absent: together %v vs alone %v", cpiTogether, cpiAlone)
	}
}

func meanCPI(recs []SegExec) float64 {
	var s float64
	for _, r := range recs {
		s += r.CPI
	}
	return s / float64(len(recs))
}

func TestMachineMigrationsCauseCPISpikes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.MigrationRate = 0.05
	cfg.NoiseCoV = 0
	m, _ := NewMachine(cfg)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		threads = append(threads, buildThread(i, 200, 1_000_000, 0.6, seqAccess(4<<10), model.Stack{0}))
	}
	res, err := m.Run(threads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations at rate 0.05 over 800 segments")
	}
	spikes := 0
	total := 0
	for _, te := range res.Threads {
		for _, rec := range te.Exec {
			total++
			if rec.CPI > 0.7 {
				spikes++
			}
		}
	}
	if spikes == 0 {
		t.Fatal("migrations produced no CPI spikes")
	}
	if total != 800 {
		t.Fatalf("segments lost: executed %d want 800", total)
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() Result {
		cfg := DefaultConfig()
		cfg.Seed = 77
		m, _ := NewMachine(cfg)
		var threads []*Thread
		for i := 0; i < 3; i++ {
			threads = append(threads, buildThread(i, 40, 500_000, 0.7, randAccess(1<<20), model.Stack{0}))
		}
		res, _ := m.Run(threads)
		return res
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles || a.Migrations != b.Migrations {
		t.Fatalf("nondeterministic run: %v/%v vs %v/%v",
			a.TotalCycles, a.Migrations, b.TotalCycles, b.Migrations)
	}
	for i := range a.Threads {
		for j := range a.Threads[i].Exec {
			if a.Threads[i].Exec[j].Cycles != b.Threads[i].Exec[j].Cycles {
				t.Fatalf("thread %d seg %d cycles differ", i, j)
			}
		}
	}
}

func TestMachineErrors(t *testing.T) {
	if _, err := NewMachine(Config{Cores: 0}); err == nil {
		t.Fatal("Cores=0 should fail")
	}
	if _, err := NewMachine(Config{Cores: 1, MigrationRate: 2}); err == nil {
		t.Fatal("MigrationRate>1 should fail")
	}
	m, _ := NewMachine(DefaultConfig())
	if _, err := m.Run(nil); err == nil {
		t.Fatal("empty Run should fail")
	}
}

func TestMoreThreadsThanCores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.MigrationRate = 0
	m, _ := NewMachine(cfg)
	var threads []*Thread
	for i := 0; i < 7; i++ {
		threads = append(threads, buildThread(i, 10, 100_000, 0.5, seqAccess(4<<10), model.Stack{0}))
	}
	res, err := m.Run(threads)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, te := range res.Threads {
		total += len(te.Exec)
		if te.Core < 0 || te.Core >= 2 {
			t.Fatalf("bad core %d", te.Core)
		}
	}
	if total != 70 {
		t.Fatalf("executed %d segments want 70", total)
	}
}

func TestLogNormalNoiseChangesCPIButNotCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationRate = 0
	cfg.NoiseCoV = 0.1
	m, _ := NewMachine(cfg)
	th := buildThread(0, 300, 1_000_000, 0.6, seqAccess(4<<10), model.Stack{0})
	res, _ := m.Run([]*Thread{th})
	var cpis []float64
	for _, rec := range res.Threads[0].Exec {
		cpis = append(cpis, rec.CPI)
	}
	s := stats.Summarize(cpis)
	if s.CoV < 0.05 || s.CoV > 0.2 {
		t.Fatalf("noise CoV=%v want ≈0.1", s.CoV)
	}
	if math.Abs(s.Mean-0.6) > 0.05 {
		t.Fatalf("noisy mean CPI=%v want ≈0.6", s.Mean)
	}
}

func TestMultiNodeIsolatesLLCContention(t *testing.T) {
	// Two LLC-heavy threads: on one node they interfere; on two nodes
	// (one core each) they do not.
	run := func(nodes int) float64 {
		cfg := DefaultConfig()
		cfg.Cores, cfg.Nodes = 2, nodes
		cfg.MigrationRate, cfg.NoiseCoV = 0, 0
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := buildThread(0, 50, 1_000_000, 0.6, randAccess(8<<20), model.Stack{0})
		b := buildThread(1, 50, 1_000_000, 0.6, randAccess(8<<20), model.Stack{0})
		res, err := m.Run([]*Thread{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return meanCPI(res.Threads[0].Exec)
	}
	shared := run(1)
	isolated := run(2)
	if isolated >= shared {
		t.Fatalf("separate nodes should remove contention: %v vs %v", isolated, shared)
	}
}

func TestMultiNodeMigrationsStayOnNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores, cfg.Nodes = 4, 2
	cfg.MigrationRate = 0.2
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var threads []*Thread
	for i := 0; i < 4; i++ {
		threads = append(threads, buildThread(i, 100, 500_000, 0.6, seqAccess(4<<10), model.Stack{0}))
	}
	res, err := m.Run(threads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	for ti, te := range res.Threads {
		startNode := te.Core / 2
		for _, rec := range te.Exec {
			if rec.Core/2 != startNode {
				t.Fatalf("thread %d migrated across nodes: core %d from node %d",
					ti, rec.Core, startNode)
			}
		}
	}
}

func TestMultiNodeValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores, cfg.Nodes = 5, 2
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("indivisible cores/nodes should fail")
	}
	cfg.Cores, cfg.Nodes = 4, -1
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("negative nodes should fail")
	}
}

func TestStreamingScansDemandLittleLLC(t *testing.T) {
	h := DefaultHierarchy()
	scan := Access{Kind: PatternSequential, WorkingSet: 256 << 20, Refs: 0.3}
	probe := Access{Kind: PatternRandom, WorkingSet: 256 << 20, Refs: 0.04}
	if h.LLCFootprint(scan) >= h.LLCFootprint(probe) {
		t.Fatalf("over-capacity scan footprint %v should be far below random %v",
			h.LLCFootprint(scan), h.LLCFootprint(probe))
	}
	resident := Access{Kind: PatternSequential, WorkingSet: 1 << 20, Refs: 0.3}
	if h.LLCFootprint(resident) != float64(1<<20) {
		t.Fatalf("resident scan footprint %v want full ws", h.LLCFootprint(resident))
	}
}

func TestPrefetchFactorOrdering(t *testing.T) {
	if !(PrefetchFactor(PatternSequential) < PrefetchFactor(PatternSawtooth) &&
		PrefetchFactor(PatternSawtooth) < PrefetchFactor(PatternStrided) &&
		PrefetchFactor(PatternStrided) < PrefetchFactor(PatternRandom)) {
		t.Fatal("prefetch coverage must decrease from streaming to random")
	}
}
