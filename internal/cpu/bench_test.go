package cpu

import (
	"testing"

	"simprof/internal/model"
)

// BenchmarkAnalyticMissModel is the counterpart of cachesim's
// BenchmarkExactCacheAccess: one analytic evaluation replaces millions
// of exact accesses per segment (the ablation DESIGN.md calls out).
func BenchmarkAnalyticMissModel(b *testing.B) {
	h := DefaultHierarchy()
	a := Access{Kind: PatternRandom, WorkingSet: 8 << 20, Refs: 0.04}
	for i := 0; i < b.N; i++ {
		m := h.Misses(a, 0.7)
		_ = h.StallCPI(a, m)
	}
}

// BenchmarkMachineRun measures whole-machine execution throughput in
// segments per second (each segment stands for ~1M instructions).
func BenchmarkMachineRun(b *testing.B) {
	stack := model.Stack{0, 1, 2}
	mkThreads := func() []*Thread {
		var threads []*Thread
		for t := 0; t < 4; t++ {
			th := &Thread{ID: t}
			for s := 0; s < 2000; s++ {
				th.Segments = append(th.Segments, Segment{
					Stack: stack, Instr: 1_000_000, BaseCPI: 0.6,
					Access: Access{Kind: PatternRandom, WorkingSet: 4 << 20, Refs: 0.04},
				})
			}
			threads = append(threads, th)
		}
		return threads
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(mkThreads()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8000*b.N)/b.Elapsed().Seconds(), "segments/s")
}
