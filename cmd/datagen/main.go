// Command datagen materializes the synthetic inputs used by the
// benchmark suite (the role BigDataBench's data synthesizer plays in the
// paper):
//
//	datagen text  -size 64MB -vocab 600000 -out corpus.txt
//	datagen kv    -records 1000000 -out records.tsv
//	datagen graph -name google -scale 16 -out edges.txt
//	datagen tableII -scale 14 -dir inputs/
//	datagen trace -units 10000 -format bin -out run.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"simprof/internal/synth"
	"simprof/internal/trace"
	_ "simprof/internal/tracebin" // registers the "bin" trace format
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "text":
		err = cmdText(os.Args[2:])
	case "kv":
		err = cmdKV(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "tableII":
		err = cmdTableII(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: datagen <text|kv|graph|tableII|trace> [flags]`)
}

// parseSize understands "64MB", "1GB", "4096".
func parseSize(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GB")
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MB")
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KB")
	}
	v, err := strconv.ParseInt(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func cmdText(args []string) error {
	fs := flag.NewFlagSet("text", flag.ExitOnError)
	size := fs.String("size", "16MB", "corpus size")
	vocab := fs.Int("vocab", 600_000, "vocabulary size")
	zipf := fs.Float64("zipf", 1.1, "Zipf exponent")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	bytes, err := parseSize(*size)
	if err != nil {
		return err
	}
	spec := synth.TextSpec{Name: "text", SizeBytes: bytes, Vocab: *vocab, ZipfS: *zipf, AvgWordLen: 6, Seed: *seed}
	w, closer, err := output(*out)
	if err != nil {
		return err
	}
	defer closer()
	n, words, err := spec.Generate(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes, %d words\n", n, words)
	return nil
}

func cmdKV(args []string) error {
	fs := flag.NewFlagSet("kv", flag.ExitOnError)
	records := fs.Int64("records", 100_000, "number of records")
	keyBytes := fs.Int("key", 10, "key bytes")
	valBytes := fs.Int("val", 90, "value bytes")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	spec := synth.KVSpec{Name: "kv", Records: *records, KeyBytes: *keyBytes, ValBytes: *valBytes, Seed: *seed}
	w, closer, err := output(*out)
	if err != nil {
		return err
	}
	defer closer()
	n, err := spec.Generate(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes\n", n)
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	name := fs.String("name", "google", "Table II input name, or 'custom'")
	scale := fs.Int("scale", 14, "Kronecker scale (2^scale vertices)")
	edgeFactor := fs.Float64("edgefactor", 16, "edges per vertex (custom only)")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output edge list (default stdout)")
	fs.Parse(args)

	var spec synth.KroneckerSpec
	if *name == "custom" {
		spec = synth.KroneckerSpec{
			Name: "custom", Scale: *scale, EdgeFactor: *edgeFactor,
			A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: *seed,
		}
	} else {
		found := false
		for _, in := range synth.TableII(*scale, *seed) {
			if in.Spec.Name == *name {
				spec, found = in.Spec, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown graph %q (see 'datagen tableII')", *name)
		}
	}
	g, err := spec.Generate()
	if err != nil {
		return err
	}
	w, closer, err := output(*out)
	if err != nil {
		return err
	}
	defer closer()
	for _, e := range g.Edges {
		fmt.Fprintf(w, "%d\t%d\n", e[0], e[1])
	}
	fmt.Fprintf(os.Stderr, "%s: %d vertices, %d edges, max out-degree %d, degree CoV %.2f\n",
		g.Name, g.N, len(g.Edges), g.MaxDeg, g.DegreeCoV())
	return nil
}

func cmdTableII(args []string) error {
	fs := flag.NewFlagSet("tableII", flag.ExitOnError)
	scale := fs.Int("scale", 14, "Kronecker scale")
	seed := fs.Uint64("seed", 1, "random seed")
	dir := fs.String("dir", "", "write each input to <dir>/<name>.txt (default: list only)")
	fs.Parse(args)
	for _, in := range synth.TableII(*scale, *seed) {
		role := "reference"
		if in.Training {
			role = "training"
		}
		fmt.Printf("%-10s %-24s %s (2^%d vertices, %d edges)\n",
			in.Spec.Name, in.Kind, role, in.Spec.Scale, in.Spec.Edges())
		if *dir != "" {
			g, err := in.Spec.Generate()
			if err != nil {
				return err
			}
			path := filepath.Join(*dir, in.Spec.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			for _, e := range g.Edges {
				fmt.Fprintf(w, "%d\t%d\n", e[0], e[1])
			}
			w.Flush()
			f.Close()
		}
	}
	return nil
}

// cmdTrace materializes a synthetic phase-structured profiling trace in
// any registered trace format — the fixture generator for format
// conversions, decoder tests and large-scale ingest benchmarks.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	units := fs.Int("units", 10_000, "sampling units")
	methods := fs.Int("methods", 256, "interned method table size")
	phases := fs.Int("phases", 4, "planted phases")
	depth := fs.Int("depth", 8, "frames per snapshot")
	snaps := fs.Int("snapshots", 10, "snapshots per unit")
	seed := fs.Uint64("seed", 1, "random seed")
	format := fs.String("format", "bin", fmt.Sprintf("output format %v", trace.FormatNames()))
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	spec := synth.DefaultTrace(*units, *seed)
	spec.Methods = *methods
	spec.Phases = *phases
	spec.Depth = *depth
	spec.Snapshots = *snaps
	tr, err := spec.Generate()
	if err != nil {
		return err
	}
	w, closer, err := output(*out)
	if err != nil {
		return err
	}
	defer closer()
	if err := tr.Encode(w, *format); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d units, %d methods, %d planted phases (%s)\n",
		len(tr.Units), len(tr.Methods), *phases, *format)
	return nil
}

// output opens the destination (buffered) or wires stdout.
func output(path string) (w *bufio.Writer, closer func(), err error) {
	if path == "" {
		w = bufio.NewWriter(os.Stdout)
		return w, func() { w.Flush() }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w = bufio.NewWriter(f)
	return w, func() { w.Flush(); f.Close() }, nil
}
