package main

import (
	"errors"
	"flag"
	"fmt"

	"simprof/internal/resilience"
)

// usageError marks a flag-parse or flag-validation failure. It is its
// own type (not a resilience class) because POSIX tools reserve exit
// code 2 for usage mistakes, and the resilience taxonomy starts at 3.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

// errHelp marks a -h/-help parse: usage has been printed, exit clean.
var errHelp = errors.New("help requested")

// exitCodeFor maps the top-level command error to the same exit-code
// contract as cmd/simprof:
//
//	0 success / help
//	1 internal failure
//	2 usage (bad flags)
//	3 bad input          4 timeout
//	5 overload           6 unavailable
//	7 canceled
func exitCodeFor(err error) int {
	var ue *usageError
	switch {
	case err == nil, errors.Is(err, errHelp):
		return 0
	case errors.As(err, &ue):
		return 2
	}
	return resilience.Classify(err).ExitCode()
}

// usageErr produces the uniform flag-validation error: every bad flag
// value on every subcommand fails with "usage: simprofd <cmd>: reason"
// and exit code 2.
func usageErr(fs *flag.FlagSet, format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf("usage: simprofd %s: %s (run 'simprofd %s -h' for flags)",
		fs.Name(), fmt.Sprintf(format, args...), fs.Name())}
}
