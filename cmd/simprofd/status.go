package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"simprof/internal/report"
	"simprof/internal/resilience"
	"simprof/internal/server"
)

// cmdStatus renders a running simprofd's readiness and live SLO burn
// rates as a table — the operator's one-glance view.
func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	addr := fs.String("addr", "localhost:7041", "simprofd address (host:port or http:// URL)")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErr(fs, "unexpected argument %q", fs.Arg(0))
	}
	if *timeout <= 0 {
		return usageErr(fs, "-timeout must be positive, got %v", *timeout)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return statusRender(os.Stdout, base, *timeout)
}

// readyzBody mirrors the /readyz response.
type readyzBody struct {
	Status  string `json:"status"`
	Breaker string `json:"breaker"`
	Active  int    `json:"active"`
	Waiting int    `json:"waiting"`
}

// statusRender fetches /readyz and /v1/slo from a running instance and
// renders them to w. Split from cmdStatus so tests can point it at an
// httptest server and capture the output.
func statusRender(w io.Writer, baseURL string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}

	var ready readyzBody
	readyStatus, err := getJSON(client, baseURL+"/readyz", &ready)
	if err != nil {
		return resilience.Unavailable(fmt.Errorf("readyz: %w", err))
	}

	var slo server.SLOStatus
	if _, err := getJSON(client, baseURL+"/v1/slo", &slo); err != nil {
		return resilience.Unavailable(fmt.Errorf("slo: %w", err))
	}

	fmt.Fprintf(w, "simprofd %s\n", baseURL)
	fmt.Fprintf(w, "  ready:   %s (HTTP %d)\n", ready.Status, readyStatus)
	fmt.Fprintf(w, "  breaker: %s  active: %d  waiting: %d\n\n", ready.Breaker, ready.Active, ready.Waiting)

	tb := report.NewTable(fmt.Sprintf("SLO burn rates (alert > %.1f on both windows)", slo.BurnAlert),
		"Route", "Objective", "Fast burn (5m)", "Slow burn (1h)", "Lat fast", "Lat slow", "Window p99", "Alert")
	for _, r := range slo.Routes {
		obj := fmt.Sprintf("%.3g avail, p%.0f<%.0fms",
			r.Objective.Availability, r.Objective.LatencyP*100, r.Objective.LatencyMS)
		p99 := "-"
		if r.WindowSamples > 0 {
			p99 = fmt.Sprintf("%.1fms (n=%d)", r.WindowP99MS, r.WindowSamples)
		}
		alert := "ok"
		if r.Alert {
			alert = "ALERT"
		}
		tb.RowS(r.Route, obj,
			fmt.Sprintf("%.2f", r.FastBurn), fmt.Sprintf("%.2f", r.SlowBurn),
			fmt.Sprintf("%.2f", r.FastLatencyBurn), fmt.Sprintf("%.2f", r.SlowLatencyBurn),
			p99, alert)
	}
	tb.Render(w)
	return nil
}

// getJSON fetches url and decodes the JSON body into v, returning the
// HTTP status. Non-2xx statuses are not errors here: /readyz answers
// 503 while draining and the body still renders.
func getJSON(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s: %w", url, err)
	}
	return resp.StatusCode, nil
}
