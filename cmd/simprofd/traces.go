package main

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"simprof/internal/report"
	"simprof/internal/resilience"
	"simprof/internal/server"
)

// cmdTraces renders a running simprofd's retained request traces: the
// retention engine's status (per-stratum inclusion probabilities, the
// weighted latency estimate) and the trace listing.
func cmdTraces(args []string) error {
	fs := newFlagSet("traces")
	addr := fs.String("addr", "localhost:7041", "simprofd address (host:port or http:// URL)")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	route := fs.String("route", "", "filter: normalized route (e.g. /v1/profile)")
	class := fs.String("status-class", "", "filter: status class (2xx, 3xx, 4xx, 5xx)")
	bucket := fs.String("bucket", "", "filter: latency bucket label (e.g. '<5ms', '>=500ms')")
	recent := fs.Bool("recent", false, "list the most-recent completions instead of the retained set")
	limit := fs.Int("limit", 20, "max traces listed, newest win (0 = unlimited)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageErr(fs, "unexpected argument %q", fs.Arg(0))
	}
	if *timeout <= 0 {
		return usageErr(fs, "-timeout must be positive, got %v", *timeout)
	}
	if *limit < 0 {
		return usageErr(fs, "-limit must not be negative, got %d", *limit)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	q := url.Values{}
	if *route != "" {
		q.Set("route", *route)
	}
	if *class != "" {
		q.Set("status_class", *class)
	}
	if *bucket != "" {
		q.Set("latency_bucket", *bucket)
	}
	if *recent {
		q.Set("set", "recent")
	}
	q.Set("limit", fmt.Sprint(*limit))
	return tracesRender(os.Stdout, base, *timeout, q)
}

// tracesRender fetches /v1/traces and renders it to w. Split from
// cmdTraces so tests can point it at an httptest server.
func tracesRender(w io.Writer, baseURL string, timeout time.Duration, q url.Values) error {
	client := &http.Client{Timeout: timeout}
	u := baseURL + "/v1/traces"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}

	var body struct {
		server.TracesResponse
		Error string `json:"error"` // set on the error envelope instead
	}
	status, err := getJSON(client, u, &body)
	if err != nil {
		return resilience.Unavailable(fmt.Errorf("traces: %w", err))
	}
	if status != http.StatusOK {
		return fmt.Errorf("traces: %s (HTTP %d)", body.Error, status)
	}
	st := body.Status

	fmt.Fprintf(w, "simprofd %s\n", baseURL)
	fmt.Fprintf(w, "  retained: %d/%d (%.0f%% of budget, %d forced)  completed: %d  evicted: %d",
		st.Retained, st.Budget, st.BudgetUtilization*100, st.ForcedRetained, st.Completed, st.Evicted)
	if st.PersistDropped > 0 {
		fmt.Fprintf(w, "  persist-dropped: %d", st.PersistDropped)
	}
	fmt.Fprintln(w)
	if est := st.Estimate; est != nil {
		fmt.Fprintf(w, "  weighted latency over %d of %d requests (kept %d, eff n %.0f):\n",
			est.CoveredN, est.N, est.Kept, est.EffN)
		fmt.Fprintf(w, "    mean %.2fms ± %.2f", est.MeanMS, est.MeanSEMS)
		for _, qe := range est.Quantiles {
			fmt.Fprintf(w, "   p%.0f %.2fms ± %.2f", qe.Q*100, qe.ValueMS, qe.SEMS)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "    histogram (all %d requests): p50 %.2fms  p90 %.2fms  p99 %.2fms\n",
			est.N, est.HistP50MS, est.HistP90MS, est.HistP99MS)
	}
	fmt.Fprintln(w)

	tb := report.NewTable("Retention strata",
		"Route", "Class", "Bucket", "Seen", "Forced", "Kept", "Target", "π", "Forced π", "Mean ms", "σ ms")
	for _, row := range st.Strata {
		pi, fpi := "-", "-"
		if row.Seen-row.ForcedSeen > 0 {
			pi = fmt.Sprintf("%.3f", row.InclusionP)
		}
		if row.ForcedSeen > 0 {
			fpi = fmt.Sprintf("%.3f", row.ForcedInclusionP)
		}
		tb.RowS(row.Route, row.StatusClass, row.LatencyBucket,
			fmt.Sprint(row.Seen), fmt.Sprint(row.ForcedSeen),
			fmt.Sprint(row.Kept+row.ForcedKept), fmt.Sprint(row.Target),
			pi, fpi, fmt.Sprintf("%.2f", row.MeanMS), fmt.Sprintf("%.2f", row.SigmaMS))
	}
	tb.Render(w)

	fmt.Fprintln(w)
	tt := report.NewTable("Traces",
		"Seq", "ID", "Route", "Status", "Class", "Latency", "Bucket", "Forced", "Weight", "Spans")
	for _, t := range body.Traces {
		forced, spans := "", ""
		if t.Forced {
			forced = "forced"
		}
		if t.HasSpans {
			spans = "yes"
		}
		tt.RowS(fmt.Sprint(t.Seq), t.ID, t.Route, fmt.Sprint(t.Status), t.Class,
			fmt.Sprintf("%.2fms", t.LatencyMS), t.LatencyBucket, forced,
			fmt.Sprintf("%.1f", t.Weight), spans)
	}
	tt.Render(w)
	return nil
}
