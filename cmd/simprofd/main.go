// Command simprofd serves SimProf's profiling pipeline over HTTP with
// resilience built in: per-request deadlines, bounded-queue admission
// with backpressure, a circuit breaker around the pipeline, retried
// crash-safe history persistence, and graceful SIGTERM drain.
//
// Endpoints:
//
//	POST /v1/profile?n=20&seed=1   upload a trace (any format simprof
//	                               reads), get phases + the stratified
//	                               CPI estimate; persisted to history
//	GET  /v1/history               list persisted runs
//	GET  /v1/history/{seq}         one full record (manifest included)
//	GET  /v1/metrics               obs metric snapshot
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 while draining or
//	                               breaker-open)
//
// Errors come back as {"error": ..., "class": ...} with the class
// mapped to the status code: 400 bad_input, 429 overload (plus
// Retry-After), 503 unavailable, 504 timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simprof/internal/obs"
	"simprof/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7041", "listen address")
	historyPath := flag.String("history", "simprofd-history.jsonl", "history store path ('' disables persistence)")
	workers := flag.Int("workers", 0, "pipeline worker bound per request (0 = GOMAXPROCS)")
	concurrency := flag.Int("concurrency", 2, "profile requests executing at once")
	queue := flag.Int("queue", 8, "profile requests allowed to wait beyond that")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drainBudget := flag.Duration("drain", 20*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Parse()
	if err := run(*addr, *historyPath, *workers, *concurrency, *queue, *timeout, *drainBudget); err != nil {
		fmt.Fprintln(os.Stderr, "simprofd:", err)
		os.Exit(1)
	}
}

func run(addr, historyPath string, workers, concurrency, queue int, timeout, drainBudget time.Duration) error {
	// The service always records its telemetry — counters are how
	// operators see rejections, retries and breaker flips.
	obs.Enable()

	srv, err := server.New(server.Config{
		HistoryPath: historyPath,
		Workers:     workers,
		Concurrency: concurrency,
		Queue:       queue,
		Timeout:     timeout,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("simprofd listening on http://%s (history: %s)", addr, historyOrOff(historyPath))
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("simprofd: %v — draining (budget %v)", s, drainBudget)
	}

	// Drain: stop admitting profile work (503 + Retry-After), let
	// in-flight requests finish within the budget, then close the
	// listener. History appends are fsynced per record, so there is
	// nothing further to flush.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("simprofd: drain budget expired with requests in flight: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("simprofd: drained cleanly")
	return nil
}

func historyOrOff(path string) string {
	if path == "" {
		return "disabled"
	}
	return path
}
