// Command simprofd serves SimProf's profiling pipeline over HTTP with
// resilience built in: per-request deadlines, bounded-queue admission
// with backpressure, a circuit breaker around the pipeline, retried
// crash-safe history persistence, and graceful SIGTERM drain.
//
// Subcommands:
//
//	simprofd [serve] [flags]   run the service (the default)
//	simprofd status -addr ...  render a running instance's readiness
//	                           and SLO burn rates as a table
//	simprofd traces -addr ...  render the retained request traces and
//	                           the retention engine's status
//
// Endpoints:
//
//	POST /v1/profile?n=20&seed=1   upload a trace (any format simprof
//	                               reads), get phases + the stratified
//	                               CPI estimate; persisted to history
//	GET  /v1/history               list persisted runs
//	GET  /v1/history/{seq}         one full record (manifest included)
//	GET  /v1/metrics               obs metric snapshot (JSON)
//	GET  /metrics                  same snapshot, Prometheus text format
//	GET  /v1/slo                   live SLO burn rates per route
//	GET  /v1/traces                retained request traces + retention
//	                               status (with -trace)
//	GET  /v1/traces/{id}           one trace as a Chrome trace-event
//	                               file (load in about:tracing/Perfetto)
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 while draining or
//	                               breaker-open)
//
// Every response carries an X-Request-Id (caller-provided or
// generated); with -access-log the service writes one structured JSON
// line per request. Errors come back as {"error": ..., "class": ...}
// with the class mapped to the status code: 400 bad_input, 429
// overload (plus Retry-After), 503 unavailable, 504 timeout.
//
// Profile serving is deduplicated by default: responses carry
// X-Simprof-Cache saying how they were produced — miss (computed),
// hit (served from the content-hash result cache, tune with
// -cache-entries/-cache-bytes), or coalesced (shared a concurrent
// identical request's execution). Distinct requests batch into flush
// passes (-batch-size/-batch-wait); -batch-size -1 restores the
// inline pre-batching path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"simprof/internal/obs"
	"simprof/internal/obs/reqtrace"
	"simprof/internal/server"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(args)
	case "status":
		err = cmdStatus(args)
	case "traces":
		err = cmdTraces(args)
	case "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "simprofd: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil && !errors.Is(err, errHelp) {
		fmt.Fprintf(os.Stderr, "simprofd: %v\n", err)
	}
	os.Exit(exitCodeFor(err))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: simprofd [command] [flags]

commands:
  serve   run the profiling service (default when no command is given)
  status  render a running instance's readiness and SLO burn rates
  traces  render a running instance's retained request traces

run 'simprofd <command> -h' for the command's flags`)
}

// newFlagSet builds a subcommand FlagSet that reports parse errors
// through the uniform usageErr path instead of exiting or printing on
// its own.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// parseFlags parses args, turning flag errors into "usage: simprofd
// <cmd>: ..." errors and -h into a printed usage plus errHelp.
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil {
		return nil
	}
	if err == flag.ErrHelp {
		fmt.Fprintf(os.Stderr, "usage: simprofd %s [flags]\n\nflags:\n", fs.Name())
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		return errHelp
	}
	return usageErr(fs, "%v", err)
}

// serveOpts is the validated serve configuration: cmdServe builds it
// from flags, serve runs it. accessLogClose is non-nil when -access-log
// opened a file the process must close on exit.
type serveOpts struct {
	addr        string
	drainBudget time.Duration
	cfg         server.Config

	accessLogClose func() error
}

// buildServeOpts parses and validates the serve flags without starting
// anything, so flag mistakes fail fast with exit code 2.
func buildServeOpts(args []string) (*serveOpts, error) {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "localhost:7041", "listen address")
	historyPath := fs.String("history", "simprofd-history.jsonl", "history store path ('' disables persistence)")
	workers := fs.Int("workers", 0, "pipeline worker bound per request (0 = GOMAXPROCS)")
	concurrency := fs.Int("concurrency", 2, "profile requests executing at once")
	queue := fs.Int("queue", 8, "profile requests allowed to wait beyond that")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := fs.Int64("max-body", 64<<20, "trace upload size limit in bytes (oversize uploads are refused as bad_input)")
	cacheEntries := fs.Int("cache-entries", 512, "content-hash result cache entry bound (-1 disables the cache)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "content-hash result cache resident-byte bound")
	batchSize := fs.Int("batch-size", 8, "distinct profile requests per batch flush (-1 disables batching, coalescing and the cache)")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "max time a batched request waits for the flush under load")
	drainBudget := fs.Duration("drain", 20*time.Second, "graceful-shutdown budget for in-flight requests")
	sloConfig := fs.String("slo-config", "", "JSON SLO objectives file ('' selects the built-in defaults)")
	accessLog := fs.String("access-log", "", "access-log destination: '' disables, '-' is stdout, else a file appended to")
	runtimeInterval := fs.Duration("runtime-interval", 10*time.Second, "runtime-metrics sampling period (0 disables the collector)")
	requestIDSeed := fs.Uint64("request-id-seed", 0x51d0, "seed for generated request IDs")
	traceOn := fs.Bool("trace", false, "retain a stratified sample of request traces (tune with -trace-*)")
	traceBudget := fs.Int("trace-budget", 256, "retained-trace budget, forced keeps included")
	traceRing := fs.Int("trace-ring", 64, "most-recent completions kept regardless of retention")
	traceRebalance := fs.Int("trace-rebalance", 64, "completions between Neyman reallocations")
	traceSeed := fs.Uint64("trace-seed", 0x7a3e, "seed for the per-stratum retention reservoirs")
	traceBuckets := fs.String("trace-buckets", "", "latency stratum bounds in ms, comma-separated ascending ('' = 5,25,100,500)")
	traceStore := fs.String("trace-store", "", "durable JSONL store for admitted traces ('' keeps the sample in memory only)")
	if err := parseFlags(fs, args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, usageErr(fs, "unexpected argument %q", fs.Arg(0))
	}
	if *timeout <= 0 {
		return nil, usageErr(fs, "-timeout must be positive, got %v", *timeout)
	}
	if *drainBudget <= 0 {
		return nil, usageErr(fs, "-drain must be positive, got %v", *drainBudget)
	}
	if *concurrency < 1 {
		return nil, usageErr(fs, "-concurrency must be at least 1, got %d", *concurrency)
	}
	if *workers < 0 {
		return nil, usageErr(fs, "-workers must not be negative, got %d", *workers)
	}
	if *maxBody < 1 {
		return nil, usageErr(fs, "-max-body must be at least 1, got %d", *maxBody)
	}
	if *cacheEntries < 1 && *cacheEntries != -1 {
		return nil, usageErr(fs, "-cache-entries must be at least 1, or -1 to disable the cache, got %d", *cacheEntries)
	}
	if *cacheBytes < 1 {
		return nil, usageErr(fs, "-cache-bytes must be at least 1, got %d", *cacheBytes)
	}
	if *batchSize < 1 && *batchSize != -1 {
		return nil, usageErr(fs, "-batch-size must be at least 1, or -1 to disable batching, got %d", *batchSize)
	}
	if *batchWait <= 0 {
		return nil, usageErr(fs, "-batch-wait must be positive, got %v", *batchWait)
	}
	if *runtimeInterval < 0 {
		return nil, usageErr(fs, "-runtime-interval must not be negative, got %v", *runtimeInterval)
	}
	if !*traceOn {
		var stray string
		fs.Visit(func(f *flag.Flag) {
			if strings.HasPrefix(f.Name, "trace-") {
				stray = f.Name
			}
		})
		if stray != "" {
			return nil, usageErr(fs, "-%s requires -trace", stray)
		}
	}
	var traceCfg *reqtrace.Config
	if *traceOn {
		if *traceBudget < 1 {
			return nil, usageErr(fs, "-trace-budget must be at least 1, got %d", *traceBudget)
		}
		if *traceRing < 1 {
			return nil, usageErr(fs, "-trace-ring must be at least 1, got %d", *traceRing)
		}
		if *traceRebalance < 1 {
			return nil, usageErr(fs, "-trace-rebalance must be at least 1, got %d", *traceRebalance)
		}
		bounds, err := parseBucketBounds(*traceBuckets)
		if err != nil {
			return nil, usageErr(fs, "-trace-buckets: %v", err)
		}
		traceCfg = &reqtrace.Config{
			Budget:         *traceBudget,
			Ring:           *traceRing,
			Rebalance:      *traceRebalance,
			Seed:           *traceSeed,
			BucketBoundsMS: bounds,
		}
	}

	o := &serveOpts{
		addr:        *addr,
		drainBudget: *drainBudget,
		cfg: server.Config{
			HistoryPath:     *historyPath,
			Workers:         *workers,
			Concurrency:     *concurrency,
			Queue:           *queue,
			Timeout:         *timeout,
			MaxBodyBytes:    *maxBody,
			CacheEntries:    *cacheEntries,
			CacheBytes:      *cacheBytes,
			BatchSize:       *batchSize,
			BatchWait:       *batchWait,
			RuntimeInterval: *runtimeInterval,
			RequestIDSeed:   *requestIDSeed,
			Trace:           traceCfg,
			TraceStorePath:  *traceStore,
		},
	}
	if *sloConfig != "" {
		slo, err := server.LoadSLOConfig(*sloConfig)
		if err != nil {
			return nil, usageErr(fs, "-slo-config: %v", err)
		}
		o.cfg.SLO = slo
	}
	switch *accessLog {
	case "":
	case "-":
		o.cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, usageErr(fs, "-access-log: %v", err)
		}
		o.cfg.AccessLog = f
		o.accessLogClose = f.Close
	}
	return o, nil
}

func cmdServe(args []string) error {
	o, err := buildServeOpts(args)
	if err != nil {
		return err
	}
	return serve(o)
}

func serve(o *serveOpts) error {
	// The service always records its telemetry — counters are how
	// operators see rejections, retries and breaker flips.
	obs.Enable()

	srv, err := server.New(o.cfg)
	if err != nil {
		if o.accessLogClose != nil {
			o.accessLogClose()
		}
		return err
	}

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		tracing := "off"
		if o.cfg.Trace != nil {
			tracing = fmt.Sprintf("on (budget %d, store %s)", o.cfg.Trace.Budget, historyOrOff(o.cfg.TraceStorePath))
		}
		log.Printf("simprofd listening on http://%s (history: %s, tracing: %s)", o.addr, historyOrOff(o.cfg.HistoryPath), tracing)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		srv.Close()
		if o.accessLogClose != nil {
			o.accessLogClose()
		}
		return err
	case s := <-sig:
		log.Printf("simprofd: %v — draining (budget %v)", s, o.drainBudget)
	}

	// Drain: stop admitting profile work (503 + Retry-After), let
	// in-flight requests finish within the budget, then close the
	// listener. History appends are fsynced per record, so there is
	// nothing further to flush; Close stops the runtime collector and
	// flushes the access log's final shutdown line.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), o.drainBudget)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("simprofd: drain budget expired with requests in flight: %v", err)
	}
	err = httpSrv.Shutdown(ctx)
	srv.Close()
	if o.accessLogClose != nil {
		o.accessLogClose()
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("simprofd: drained cleanly")
	return nil
}

func historyOrOff(path string) string {
	if path == "" {
		return "disabled"
	}
	return path
}

// parseBucketBounds parses the -trace-buckets value: a comma-separated,
// strictly ascending list of positive millisecond bounds. Empty selects
// the engine default.
func parseBucketBounds(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	bounds := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q", p)
		}
		if v <= 0 {
			return nil, fmt.Errorf("bound %g must be positive", v)
		}
		if len(bounds) > 0 && v <= bounds[len(bounds)-1] {
			return nil, fmt.Errorf("bounds must be strictly ascending, got %g after %g", v, bounds[len(bounds)-1])
		}
		bounds = append(bounds, v)
	}
	return bounds, nil
}
