package main

import (
	"bytes"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"simprof/internal/obs"
	"simprof/internal/obs/reqtrace"
	"simprof/internal/server"
)

// TestServeTraceFlags: the -trace flag family builds the retention
// config, and trace tuning without -trace is a usage error.
func TestServeTraceFlags(t *testing.T) {
	o, err := buildServeOpts([]string{
		"-history", "",
		"-trace",
		"-trace-budget", "64",
		"-trace-ring", "8",
		"-trace-rebalance", "16",
		"-trace-seed", "99",
		"-trace-buckets", "1, 10, 100",
		"-trace-store", "traces.jsonl",
	})
	if err != nil {
		t.Fatalf("buildServeOpts: %v", err)
	}
	tc := o.cfg.Trace
	if tc == nil || tc.Budget != 64 || tc.Ring != 8 || tc.Rebalance != 16 || tc.Seed != 99 {
		t.Fatalf("trace config %+v", tc)
	}
	if len(tc.BucketBoundsMS) != 3 || tc.BucketBoundsMS[2] != 100 {
		t.Fatalf("bucket bounds %v", tc.BucketBoundsMS)
	}
	if o.cfg.TraceStorePath != "traces.jsonl" {
		t.Fatalf("trace store path %q", o.cfg.TraceStorePath)
	}

	// Defaults: no -trace means no engine.
	o, err = buildServeOpts([]string{"-history", ""})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Trace != nil {
		t.Fatalf("tracing on without -trace: %+v", o.cfg.Trace)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"tuning-without-trace", []string{"-trace-budget", "10"}, "requires -trace"},
		{"store-without-trace", []string{"-trace-store", "x.jsonl"}, "requires -trace"},
		{"zero-budget", []string{"-trace", "-trace-budget", "0"}, "-trace-budget must be at least 1"},
		{"zero-ring", []string{"-trace", "-trace-ring", "0"}, "-trace-ring must be at least 1"},
		{"zero-rebalance", []string{"-trace", "-trace-rebalance", "0"}, "-trace-rebalance must be at least 1"},
		{"bad-bucket", []string{"-trace", "-trace-buckets", "5,abc"}, "-trace-buckets"},
		{"descending-buckets", []string{"-trace", "-trace-buckets", "100,5"}, "strictly ascending"},
		{"neg-bucket", []string{"-trace", "-trace-buckets", "-1"}, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildServeOpts(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
			if exitCodeFor(err) != 2 {
				t.Fatalf("exit code %d, want 2", exitCodeFor(err))
			}
		})
	}
}

// TestTracesFlagValidation mirrors the other subcommands' flag tables.
func TestTracesFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-wat"}, "usage: simprofd traces"},
		{"stray-arg", []string{"extra"}, `unexpected argument "extra"`},
		{"zero-timeout", []string{"-timeout", "0"}, "-timeout must be positive"},
		{"neg-limit", []string{"-limit", "-2"}, "-limit must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdTraces(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
			if exitCodeFor(err) != 2 {
				t.Fatalf("exit code %d, want 2", exitCodeFor(err))
			}
		})
	}
}

// TestTracesRender drives the traces view against a live in-process
// traced server: the retention summary, strata table and trace rows
// all render.
func TestTracesRender(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Default().Reset()
		obs.Disable()
	}()
	srv, err := server.New(server.Config{
		HistoryPath: "",
		Trace:       &reqtrace.Config{Budget: 16, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Generate traffic: a healthz round and a 404.
	client := ts.Client()
	for _, p := range []string{"/healthz", "/healthz", "/nope"} {
		resp, err := client.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var buf bytes.Buffer
	if err := tracesRender(&buf, ts.URL, 5*time.Second, url.Values{}); err != nil {
		t.Fatalf("tracesRender: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"retained:", "Retention strata", "/healthz", "Traces", "Weight"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestTracesRenderDisabled: against an untraced server the subcommand
// surfaces the service's refusal instead of an empty table.
func TestTracesRenderDisabled(t *testing.T) {
	srv, err := server.New(server.Config{HistoryPath: ""})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	err = tracesRender(&buf, ts.URL, 5*time.Second, url.Values{})
	if err == nil || !strings.Contains(err.Error(), "request tracing is disabled") {
		t.Fatalf("want disabled-tracing error, got %v", err)
	}
}
