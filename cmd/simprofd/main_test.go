package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simprof/internal/obs"
	"simprof/internal/server"
)

// TestServeFlagValidation checks every bad serve flag fails through the
// uniform "usage: simprofd serve: ..." error path with exit code 2 —
// validation runs before anything listens.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-wat"}, "usage: simprofd serve"},
		{"stray-arg", []string{"extra"}, `unexpected argument "extra"`},
		{"neg-timeout", []string{"-timeout", "-1s"}, "-timeout must be positive"},
		{"zero-timeout", []string{"-timeout", "0"}, "-timeout must be positive"},
		{"neg-drain", []string{"-drain", "-5s"}, "-drain must be positive"},
		{"zero-concurrency", []string{"-concurrency", "0"}, "-concurrency must be at least 1"},
		{"neg-runtime-interval", []string{"-runtime-interval", "-10s"}, "-runtime-interval must not be negative"},
		{"neg-workers", []string{"-workers", "-3"}, "-workers must not be negative"},
		{"zero-max-body", []string{"-max-body", "0"}, "-max-body must be at least 1"},
		{"neg-max-body", []string{"-max-body", "-5"}, "-max-body must be at least 1"},
		{"zero-cache-entries", []string{"-cache-entries", "0"}, "-cache-entries must be at least 1"},
		{"bad-neg-cache-entries", []string{"-cache-entries", "-2"}, "-cache-entries must be at least 1"},
		{"zero-cache-bytes", []string{"-cache-bytes", "0"}, "-cache-bytes must be at least 1"},
		{"zero-batch-size", []string{"-batch-size", "0"}, "-batch-size must be at least 1"},
		{"bad-neg-batch-size", []string{"-batch-size", "-8"}, "-batch-size must be at least 1"},
		{"zero-batch-wait", []string{"-batch-wait", "0"}, "-batch-wait must be positive"},
		{"neg-batch-wait", []string{"-batch-wait", "-1ms"}, "-batch-wait must be positive"},
		{"missing-slo-config", []string{"-slo-config", "/nonexistent/slo.json"}, "-slo-config"},
		{"bad-access-log-dir", []string{"-access-log", "/nonexistent/dir/access.log"}, "-access-log"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildServeOpts(tc.args)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if got := exitCodeFor(err); got != 2 {
				t.Fatalf("exit code %d, want 2", got)
			}
			if !strings.HasPrefix(err.Error(), "usage: simprofd serve") {
				t.Fatalf("error %q does not use the uniform usage prefix", err)
			}
		})
	}
}

// TestServeBadSLOConfigContent: a present but invalid objectives file
// is a usage error naming the offending field.
func TestServeBadSLOConfigContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, []byte(`{"routes":{"/v1/profile":{"availability":1.5,"latency_p":0.99,"latency_threshold_ms":500}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := buildServeOpts([]string{"-slo-config", path})
	if err == nil || !strings.Contains(err.Error(), "availability") {
		t.Fatalf("invalid availability not rejected: %v", err)
	}
	if exitCodeFor(err) != 2 {
		t.Fatalf("exit code %d, want 2", exitCodeFor(err))
	}
}

// TestServeGoodFlags: a valid flag set builds the expected config,
// including the SLO objectives and an append-mode access log.
func TestServeGoodFlags(t *testing.T) {
	dir := t.TempDir()
	sloPath := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(sloPath, []byte(`{"routes":{"/v1/profile":{"availability":0.99,"latency_p":0.95,"latency_threshold_ms":250}},"burn_alert":6}`), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "access.log")
	o, err := buildServeOpts([]string{
		"-addr", "localhost:0",
		"-history", "",
		"-slo-config", sloPath,
		"-access-log", logPath,
		"-runtime-interval", "0",
	})
	if err != nil {
		t.Fatalf("buildServeOpts: %v", err)
	}
	defer o.accessLogClose()
	if o.cfg.SLO == nil || o.cfg.SLO.BurnAlert != 6 {
		t.Fatalf("SLO config not loaded: %+v", o.cfg.SLO)
	}
	obj, ok := o.cfg.SLO.Routes["/v1/profile"]
	if !ok || obj.LatencyMS != 250 {
		t.Fatalf("route objective not loaded: %+v", o.cfg.SLO.Routes)
	}
	if o.cfg.AccessLog == nil || o.accessLogClose == nil {
		t.Fatal("access log file not opened")
	}
	if o.cfg.RuntimeInterval != 0 {
		t.Fatalf("runtime interval = %v, want 0", o.cfg.RuntimeInterval)
	}
}

// TestServeBatchFlags: the cache/batch/body knobs land in the server
// config, including the -1 disable sentinels and the -workers bound.
func TestServeBatchFlags(t *testing.T) {
	o, err := buildServeOpts([]string{
		"-history", "",
		"-workers", "3",
		"-max-body", "1048576",
		"-cache-entries", "64",
		"-cache-bytes", "8388608",
		"-batch-size", "16",
		"-batch-wait", "5ms",
	})
	if err != nil {
		t.Fatalf("buildServeOpts: %v", err)
	}
	if o.cfg.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", o.cfg.Workers)
	}
	if o.cfg.MaxBodyBytes != 1<<20 {
		t.Fatalf("MaxBodyBytes = %d, want %d", o.cfg.MaxBodyBytes, 1<<20)
	}
	if o.cfg.CacheEntries != 64 || o.cfg.CacheBytes != 8<<20 {
		t.Fatalf("cache bounds = (%d, %d), want (64, %d)", o.cfg.CacheEntries, o.cfg.CacheBytes, 8<<20)
	}
	if o.cfg.BatchSize != 16 || o.cfg.BatchWait != 5*time.Millisecond {
		t.Fatalf("batch knobs = (%d, %v), want (16, 5ms)", o.cfg.BatchSize, o.cfg.BatchWait)
	}

	o, err = buildServeOpts([]string{"-history", "", "-cache-entries", "-1", "-batch-size", "-1"})
	if err != nil {
		t.Fatalf("disable sentinels rejected: %v", err)
	}
	if o.cfg.CacheEntries != -1 || o.cfg.BatchSize != -1 {
		t.Fatalf("sentinels = (%d, %d), want (-1, -1)", o.cfg.CacheEntries, o.cfg.BatchSize)
	}
}

// TestStatusFlagValidation mirrors the serve table for the status
// subcommand.
func TestStatusFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-wat"}, "usage: simprofd status"},
		{"stray-arg", []string{"extra"}, `unexpected argument "extra"`},
		{"zero-timeout", []string{"-timeout", "0"}, "-timeout must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdStatus(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
			if exitCodeFor(err) != 2 {
				t.Fatalf("exit code %d, want 2", exitCodeFor(err))
			}
		})
	}
}

// TestHelpFlag: -h prints usage and resolves to errHelp (exit 0).
func TestHelpFlag(t *testing.T) {
	if _, err := buildServeOpts([]string{"-h"}); err != errHelp {
		t.Fatalf("serve -h: got %v, want errHelp", err)
	}
	if err := cmdStatus([]string{"-h"}); err != errHelp {
		t.Fatalf("status -h: got %v, want errHelp", err)
	}
}

// TestStatusRender drives the status view against a live in-process
// server: readiness, the SLO table and the alert column all render.
func TestStatusRender(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Default().Reset()
		obs.Disable()
	}()
	srv, err := server.New(server.Config{HistoryPath: ""})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	if err := statusRender(&buf, ts.URL, 5*time.Second); err != nil {
		t.Fatalf("statusRender: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"ready:   ok", "breaker: closed", "/v1/profile", "SLO burn rates"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
}

// TestStatusRenderUnreachable: a dead address classifies as unavailable
// (exit 6), not an internal failure.
func TestStatusRenderUnreachable(t *testing.T) {
	var buf bytes.Buffer
	err := statusRender(&buf, "http://127.0.0.1:1", 500*time.Millisecond)
	if err == nil {
		t.Fatal("expected an error for an unreachable daemon")
	}
	if got := exitCodeFor(err); got != 6 {
		t.Fatalf("exit code %d, want 6 (unavailable)", got)
	}
}

// TestStatusRenderDraining: /readyz answering 503 still renders (the
// operator needs the view most when the service is degraded).
func TestStatusRenderDraining(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining","breaker":"closed","active":1,"waiting":0}`))
	})
	mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"burn_alert":14.4,"routes":[]}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var buf bytes.Buffer
	if err := statusRender(&buf, ts.URL, time.Second); err != nil {
		t.Fatalf("statusRender: %v", err)
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Fatalf("draining state not rendered:\n%s", buf.String())
	}
}
