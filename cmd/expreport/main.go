// Command expreport regenerates the paper's tables and figures from the
// simulated substrate and prints them as text tables/bar charts.
//
// Usage:
//
//	expreport [-exp all|tableI|fig6|fig7|fig8|fig9|fig10|fig11|tableII|fig12|fig13|fig14|fig15|ablations|design|degradation]
//	          [-seed N] [-scale quick|default] [-repeats R]
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"

	"simprof/internal/experiments"
	"simprof/internal/history"
	"simprof/internal/model"
	"simprof/internal/obs"
	"simprof/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, tableI, fig6..fig15, tableII, ablations, design, degradation)")
	seed := flag.Uint64("seed", 42, "top-level random seed")
	scale := flag.String("scale", "default", "experiment scale: quick or default")
	repeats := flag.Int("repeats", 0, "override draws averaged for randomized methods")
	workers := flag.Int("workers", 0, "worker goroutines for the compute kernels (0 = GOMAXPROCS, 1 = serial)")
	telemetry := flag.String("telemetry", "", "write a JSON run manifest (span tree, metrics) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and a telemetry expvar snapshot on this address")
	historyStore := flag.String("history", "", "append this run's manifest to a history store (JSONL) for 'simprof history diff'")
	flag.Parse()

	var manifest *obs.Manifest
	var root *obs.Span
	if *telemetry != "" || *pprofAddr != "" || *historyStore != "" {
		obs.Enable()
		if *pprofAddr != "" {
			expvar.Publish("simprof_obs", expvar.Func(func() any {
				return obs.Default().Snapshot()
			}))
			ln, err := net.Listen("tcp", *pprofAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expreport: pprof: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("pprof + expvar on http://%s/debug/pprof\n", ln.Addr())
			go func() { _ = http.Serve(ln, nil) }()
		}
		manifest = obs.NewManifest("expreport", os.Args[1:])
		root = obs.StartRun("expreport " + *exp)
	}

	cfg := experiments.Default()
	if *scale == "quick" {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	cfg.Core.Workers = *workers
	s := experiments.NewSuite(cfg)

	runners := map[string]func(*experiments.Suite) error{
		"tableI":      tableI,
		"fig6":        fig6,
		"fig7":        fig7,
		"fig8":        fig8,
		"fig9":        fig9,
		"fig10":       fig10,
		"fig11":       fig11,
		"tableII":     tableII,
		"fig12":       fig12,
		"fig13":       fig13,
		"fig14":       func(s *experiments.Suite) error { return anatomy(s, "spark") },
		"fig15":       func(s *experiments.Suite) error { return anatomy(s, "hadoop") },
		"ablations":   ablations,
		"design":      design,
		"degradation": degradation,
	}
	order := []string{"tableI", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "tableII", "fig12", "fig13", "fig14", "fig15", "ablations", "design",
		"degradation"}

	var toRun []string
	if *exp == "all" {
		toRun = order
		// Profile all workloads in parallel up front.
		if err := s.Preload(); err != nil {
			fmt.Fprintf(os.Stderr, "expreport: preload: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			if _, ok := runners[e]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s)\n", e, strings.Join(order, " "))
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	for _, e := range toRun {
		span := obs.StartSpan("expreport." + e)
		err := runners[e](s)
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %s: %v\n", e, err)
			os.Exit(1)
		}
	}
	if manifest != nil {
		root.End()
		manifest.Finalize()
		if *telemetry != "" {
			if err := manifest.WriteFile(*telemetry); err != nil {
				fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("telemetry manifest → %s\n", *telemetry)
		}
		if *historyStore != "" {
			r := history.FromManifest(manifest)
			r.Note = "expreport " + *exp
			r, err := history.Open(*historyStore).Append(r)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded run #%d (key %s) → %s\n", r.Seq, r.Key, *historyStore)
		}
	}
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func tableI(s *experiments.Suite) error {
	rows, err := s.TableI()
	if err != nil {
		return err
	}
	t := report.NewTable("Table I — evaluated benchmarks",
		"Benchmark", "Abbrev", "Type", "Input", "units_hp", "units_sp")
	for _, r := range rows {
		t.Row(r.Benchmark, r.Abbrev, r.Type, r.Input, r.Units["hadoop"], r.Units["spark"])
	}
	t.Render(os.Stdout)
	return nil
}

func fig6(s *experiments.Suite) error {
	rows, err := s.Fig6()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 6 — coefficient of variation of CPIs",
		"Workload", "Population", "Weighted", "Max")
	for _, r := range rows {
		t.Row(r.Workload, r.Population, r.Weighted, r.Max)
	}
	t.Render(os.Stdout)
	return nil
}

func fig7(s *experiments.Suite) error {
	rows, err := s.Fig7()
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig. 7 — CPI sampling error (n=%d; paper avgs: SECOND 6.5%%, SRS 8.9%%, CODE 4.0%%, SimProf 1.6%%)",
			s.Config().SampleSize),
		"Workload", "SECOND", "SRS", "CODE", "SimProf")
	for _, r := range rows {
		t.RowS(r.Workload, pct(r.Second), pct(r.SRS), pct(r.Code), pct(r.SimProf))
	}
	avg := experiments.Averages(rows)
	t.RowS("average", pct(avg.Second), pct(avg.SRS), pct(avg.Code), pct(avg.SimProf))
	t.Render(os.Stdout)
	return nil
}

func fig8(s *experiments.Suite) error {
	rows, err := s.Fig8()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 8 — sample size for 99.7% confidence (paper avgs: 85 / 244 / 611)",
		"Workload", "SimProf@5%", "SimProf@2%", "SECOND")
	var a5, a2, as int
	for _, r := range rows {
		t.Row(r.Workload, r.SimProf5, r.SimProf2, r.SecondUnits)
		a5 += r.SimProf5
		a2 += r.SimProf2
		as += r.SecondUnits
	}
	n := len(rows)
	t.Row("average", a5/n, a2/n, as/n)
	t.Render(os.Stdout)
	return nil
}

func fig9(s *experiments.Suite) error {
	rows, err := s.Fig9()
	if err != nil {
		return err
	}
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		labels[i], values[i] = r.Workload, float64(r.Phases)
	}
	report.BarChart(os.Stdout, "Fig. 9 — number of phases", labels, values, "%.0f")
	return nil
}

func fig10(s *experiments.Suite) error {
	rows, err := s.Fig10()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 10 — phase type distribution (unit-weighted)",
		"Workload", "map", "reduce", "sort", "io", "other")
	for _, r := range rows {
		t.RowS(r.Workload,
			pct(r.Share[model.KindMap]), pct(r.Share[model.KindReduce]),
			pct(r.Share[model.KindSort]), pct(r.Share[model.KindIO]),
			pct(r.Share[model.KindOther]+r.Share[model.KindFramework]))
	}
	t.Render(os.Stdout)
	return nil
}

func fig11(s *experiments.Suite) error {
	rows, err := s.Fig11()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 11 — cc_sp optimal allocation (sorted by phase weight)",
		"Phase", "Weight", "CPI CoV", "SampleRatio", "Dominant method")
	for _, r := range rows {
		t.RowS(fmt.Sprint(r.Phase), pct(r.Weight), fmt.Sprintf("%.3f", r.CPICoV),
			pct(r.SampleRatio), r.DominantName)
	}
	t.Render(os.Stdout)
	return nil
}

func tableII(s *experiments.Suite) error {
	t := report.NewTable("Table II — evaluated graph inputs",
		"Input", "Type", "Role", "Vertices", "Edges", "Skew")
	for _, in := range s.TableII() {
		role := "reference"
		if in.Training {
			role = "training"
		}
		st := in.Spec.Stats()
		t.RowS(in.Spec.Name, in.Kind, role,
			fmt.Sprint(st.Vertices), fmt.Sprint(st.Records), fmt.Sprintf("%.2f", st.Skew))
	}
	t.Render(os.Stdout)
	return nil
}

func fig12(s *experiments.Suite) error {
	rows, err := s.Fig12()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 12 — simulation points in input-sensitive phases (paper avg: 66.3% kept / 33.7% skipped)",
		"Workload", "Kept", "Skipped")
	var avg float64
	for _, r := range rows {
		t.RowS(r.Workload, pct(r.SensitiveFraction), pct(1-r.SensitiveFraction))
		avg += r.SensitiveFraction / float64(len(rows))
	}
	t.RowS("average", pct(avg), pct(1-avg))
	t.Render(os.Stdout)
	return nil
}

func fig13(s *experiments.Suite) error {
	rows, err := s.Fig13()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 13 — input-sensitive vs insensitive phases",
		"Workload", "Sensitive", "Insensitive")
	for _, r := range rows {
		t.Row(r.Workload, r.Sensitive, r.Insensitive)
	}
	t.Render(os.Stdout)
	return nil
}

func anatomy(s *experiments.Suite, fw string) error {
	a, err := s.WordCountAnatomy(fw)
	if err != nil {
		return err
	}
	figNo := map[string]string{"spark": "14", "hadoop": "15"}[fw]
	t := report.NewTable(
		fmt.Sprintf("Fig. %s — WordCount (%s) phase anatomy", figNo, fw),
		"Phase", "Weight", "Mean CPI", "CPI CoV", "Dominant methods")
	for _, p := range a.Phases {
		t.RowS(fmt.Sprint(p.Phase), pct(p.Weight), fmt.Sprintf("%.2f", p.MeanCPI),
			fmt.Sprintf("%.3f", p.CoV), strings.Join(p.Dominant, ", "))
	}
	t.Render(os.Stdout)
	// CPI-vs-unit scatter, downsampled into a coarse text strip chart.
	fmt.Printf("CPI per sampling unit (sorted by phase id), %d units:\n", len(a.CPIs))
	const cols = 100
	step := (len(a.CPIs) + cols - 1) / cols
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for i := 0; i < len(a.CPIs); i += step {
		maxC := 0.0
		for j := i; j < i+step && j < len(a.CPIs); j++ {
			if a.CPIs[j] > maxC {
				maxC = a.CPIs[j]
			}
		}
		b.WriteByte("._-=+*#%@"[bucket(maxC)])
	}
	fmt.Println(b.String())
	fmt.Println("(glyph = max CPI in bucket: . <1, _ <1.5, - <2, = <2.5, + <3, * <4, # <5, % <7, @ ≥7)")
	fmt.Println()
	return nil
}

func ablations(s *experiments.Suite) error {
	unit, err := s.AblationUnitSize()
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation — sampling-unit size (wc_hp, 10 snapshots/unit; paper uses 100M units)",
		"UnitInstr", "Units", "Phases", "Weighted CoV", "SimProf err")
	for _, r := range unit {
		t.RowS(fmt.Sprintf("%dM", r.UnitInstr/1_000_000), fmt.Sprint(r.Units), fmt.Sprint(r.Phases),
			fmt.Sprintf("%.3f", r.WeightedCoV), pct(r.SimProfErr))
	}
	t.Render(os.Stdout)

	snap, err := s.AblationSnapshotRate()
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — snapshot cadence (wc_hp, 10M units; paper takes 10 snapshots/unit)",
		"Snapshots/unit", "Phases", "Weighted CoV", "SimProf err")
	for _, r := range snap {
		t.RowS(fmt.Sprint(r.Snapshots), fmt.Sprint(r.Phases),
			fmt.Sprintf("%.3f", r.WeightedCoV), pct(r.SimProfErr))
	}
	t.Render(os.Stdout)

	comb, err := s.AblationCombined()
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — SimProf + systematic sub-unit sampling (wc_hp; the paper's future work)",
		"Detail fraction", "Detailed instr", "Margin (99.7%)", "Speedup vs full run")
	for _, r := range comb {
		t.RowS(fmt.Sprintf("%.0f%%", 100*r.Fraction), fmt.Sprintf("%dM", r.DetailInstr/1_000_000),
			fmt.Sprintf("±%.3f CPI", r.MarginOfErr), fmt.Sprintf("%.0f×", r.SpeedupVsAll))
	}
	t.Render(os.Stdout)

	gc, err := s.AblationGC()
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — JVM garbage collection model (wc_sp)",
		"Config", "Phases", "Oracle CPI", "GC snapshot share")
	for _, r := range gc {
		t.RowS(r.Label, fmt.Sprint(r.Phases), fmt.Sprintf("%.3f", r.OracleCPI), pct(r.GCShare))
	}
	t.Render(os.Stdout)

	cold, err := s.AblationColdStart()
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — cold-start bias vs unit size (why the paper uses 100M-instruction units)",
		"UnitInstr", "Warmup fraction", "Biased CPI", "True CPI", "Relative bias")
	for _, r := range cold {
		t.RowS(fmt.Sprintf("%dM", r.UnitInstr/1_000_000), pct(r.WarmupFrac),
			fmt.Sprintf("%.3f", r.BiasedCPI), fmt.Sprintf("%.3f", r.TrueCPI), pct(r.RelativeBias))
	}
	t.Render(os.Stdout)

	nodes, err := s.AblationNodes()
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — cluster topology (wc_sp on 4 cores as 1/2/4 nodes)",
		"Nodes", "Oracle CPI", "Weighted CoV", "Phases")
	for _, r := range nodes {
		t.RowS(fmt.Sprint(r.Nodes), fmt.Sprintf("%.3f", r.OracleCPI),
			fmt.Sprintf("%.3f", r.WeightedCoV), fmt.Sprint(r.Phases))
	}
	t.Render(os.Stdout)
	return nil
}

func degradation(s *experiments.Suite) error {
	rows, err := s.AblationDegradation()
	if err != nil {
		return err
	}
	t := report.NewTable("Degradation — sampling accuracy vs profiler fault rate (seeded faults.Uniform, repaired traces)",
		"Workload", "Fault rate", "Degraded units", "Units", "Phases", "SimProf err", "Mean SE", "CI coverage", "SE inflation")
	for _, r := range rows {
		t.RowS(r.Workload, pct(r.FaultRate), pct(r.DegradedFrac),
			fmt.Sprint(r.Units), fmt.Sprint(r.Phases),
			pct(r.SimProfErr), fmt.Sprintf("%.4f", r.MeanSE),
			pct(r.CICoverage), fmt.Sprintf("%.2f", r.SEInflation))
	}
	t.Render(os.Stdout)
	return nil
}

func design(s *experiments.Suite) error {
	rows, err := s.DesignExploration()
	if err != nil {
		return err
	}
	t := report.NewTable("Design-space exploration — 20 wc_sp points picked on the baseline, reused on every candidate",
		"Design", "Oracle CPI", "Point estimate", "Error")
	for _, r := range rows {
		t.RowS(r.Design, fmt.Sprintf("%.3f", r.OracleCPI), fmt.Sprintf("%.3f", r.EstCPI), pct(r.Err))
	}
	t.Render(os.Stdout)
	return nil
}

func bucket(cpi float64) int {
	switch {
	case cpi < 1:
		return 0
	case cpi < 1.5:
		return 1
	case cpi < 2:
		return 2
	case cpi < 2.5:
		return 3
	case cpi < 3:
		return 4
	case cpi < 4:
		return 5
	case cpi < 5:
		return 6
	case cpi < 7:
		return 7
	default:
		return 8
	}
}
