// Command simprof drives the SimProf pipeline from the shell:
//
//	simprof profile -bench wc -framework spark -out wc_sp.gob
//	    profile a workload on the simulated machine and save the trace
//	simprof phases -trace wc_sp.gob
//	    form phases and print the phase table
//	simprof sample -trace wc_sp.gob -n 20
//	    select simulation points by stratified random sampling
//	simprof plan -trace wc_sp.gob -err 0.05
//	    compute the sample size needed for a target error bound
//	simprof compare -trace wc_sp.gob -n 20
//	    run all four sampling approaches and report their errors
//	simprof sensitivity -bench cc -framework spark -graphscale 19
//	    run the Table II input-sensitivity study for a graph workload
//	simprof inspect -manifest run.json
//	    render a telemetry manifest written with -telemetry
//	simprof history record|list|show|diff|gate
//	    cross-run store: append manifests + bench snapshots, diff two
//	    runs, gate benchmark results against a committed baseline
//
// Every pipeline command takes -telemetry <file> to write a JSON run
// manifest and -pprof <addr> to serve net/http/pprof while it runs.
// 'simprof profile -trace out.json' and 'simprof inspect -trace
// out.json' export the span tree and worker timer samples as Chrome
// trace-event JSON for Perfetto / about://tracing.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"simprof/internal/core"
	"simprof/internal/faults"
	"simprof/internal/phase"
	"simprof/internal/report"
	"simprof/internal/resilience"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/synth"
	"simprof/internal/trace"
	_ "simprof/internal/tracebin" // registers the "bin" trace format
	"simprof/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "phases":
		err = cmdPhases(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "sensitivity":
		err = cmdSensitivity(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "history":
		err = cmdHistory(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "simprof: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	switch {
	case err == nil:
	case errors.Is(err, errHelp):
		// -h on a subcommand: usage was already printed.
	default:
		fmt.Fprintf(os.Stderr, "simprof: %v\n", err)
	}
	os.Exit(exitCodeFor(err))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: simprof <command> [flags]

commands:
  profile      profile a workload and write the trace to a file
  phases       form phases from a trace and print the phase table
  sample       select simulation points (stratified random sampling)
  plan         sample size needed for a target error bound
  compare      error of SECOND/SRS/CODE/SimProf on a trace
  sensitivity  input-sensitivity study for cc/rank (Table II inputs)
  inspect      render a telemetry manifest written with -telemetry
  history      cross-run store: record, list, show, diff, gate

run 'simprof <command> -h' for the command's flags`)
}

// errHelp marks a -h/-help parse: usage has been printed, exit clean.
var errHelp = errors.New("help requested")

// newFlagSet builds a subcommand FlagSet that reports parse errors
// through the uniform usageErr path instead of exiting or printing on
// its own.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// parseFlags parses args, turning flag errors into "usage: simprof
// <cmd>: ..." errors and -h into a printed usage plus errHelp.
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil {
		return nil
	}
	if errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "usage: simprof %s [flags]\n\nflags:\n", fs.Name())
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		return errHelp
	}
	return usageErr(fs, "%v", err)
}

// validateWorkload rejects unknown -bench / -framework values up front
// instead of failing deep inside workload construction.
func validateWorkload(fs *flag.FlagSet, bench, fw string) error {
	known := workloads.Benchmarks()
	ok := false
	for _, b := range known {
		if b == bench {
			ok = true
			break
		}
	}
	if !ok {
		return usageErr(fs, "unknown -bench %q (choose from: %s)", bench, strings.Join(known, " "))
	}
	if fw != "spark" && fw != "hadoop" {
		return usageErr(fs, "unknown -framework %q (spark or hadoop)", fw)
	}
	return nil
}

// validateConfidence checks a -confidence level is a proper probability.
func validateConfidence(fs *flag.FlagSet, conf float64) error {
	if conf <= 0 || conf >= 1 {
		return usageErr(fs, "-confidence must be in (0,1), got %v", conf)
	}
	return nil
}

// workloadFlags registers the common workload-scale flags.
func workloadFlags(fs *flag.FlagSet) (*string, *string, *uint64, *workloads.Options) {
	bench := fs.String("bench", "wc", "benchmark: "+strings.Join(workloads.Benchmarks(), " "))
	fw := fs.String("framework", "spark", "framework: spark or hadoop")
	seed := fs.Uint64("seed", 42, "random seed")
	opts := &workloads.Options{}
	fs.IntVar(&opts.Cores, "cores", 4, "simulated cores / executor threads")
	fs.Int64Var(&opts.TextBytes, "textbytes", 0, "text corpus size (wc/grep/bayes)")
	fs.Int64Var(&opts.SortBytes, "sortbytes", 0, "sort input size")
	fs.IntVar(&opts.GraphScale, "graphscale", 0, "Kronecker scale for cc/rank")
	return bench, fw, seed, opts
}

func cmdProfile(args []string) error {
	fs := newFlagSet("profile")
	bench, fw, seed, opts := workloadFlags(fs)
	out := fs.String("out", "", "output trace file")
	format := fs.String("format", "", "trace format: "+strings.Join(trace.FormatNames(), " ")+" (default: by extension)")
	faultSpec := fs.String("faults", "", `inject profiler faults before writing, e.g. "rate=0.05" or "drop=0.1,crash=0.02,snap=0.05" (keys: drop mux muxcov snap crash dup reorder rate)`)
	faultSeed := fs.Uint64("faultseed", 0, "seed for the fault injector (default: derived from -seed)")
	tel := telemetryFlagsWithTrace(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *out == "" {
		return usageErr(fs, "-out is required")
	}
	outFormat, err := formatForOut(fs, *out, *format)
	if err != nil {
		return err
	}
	if err := validateWorkload(fs, *bench, *fw); err != nil {
		return err
	}
	if err := tel.start("profile", args); err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	in, err := workloads.DefaultInput(*bench, *opts)
	if err != nil {
		return err
	}
	tr, err := core.ProfileWorkload(*bench, *fw, in, *opts, cfg)
	if err != nil {
		return err
	}
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return usageErr(fs, "%v", err)
		}
		fcfg.Seed = *faultSeed
		if fcfg.Seed == 0 {
			fcfg.Seed = stats.SplitSeed(*seed, 0xfa)
		}
		faulty, frep, err := faults.Apply(tr, fcfg)
		if err != nil {
			return err
		}
		rrep, err := faulty.Repair()
		if err != nil {
			return err
		}
		tr = faulty
		fmt.Printf("faults injected: %s\n", frep)
		if rrep.Changed() {
			fmt.Printf("repair: %s\n", rrep)
		}
		sum := tr.Summarize()
		fmt.Printf("degraded units: %.1f%% (%s)\n", 100*tr.DegradedFraction(), sum)
		if tel.manifest != nil {
			tel.manifest.Faults = faultInfo(fcfg, frep, rrep)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Encode(f, outFormat); err != nil {
		return err
	}
	fmt.Printf("%s: %d sampling units (%dM instructions each), oracle CPI %.3f → %s (%s)\n",
		tr.Name(), len(tr.Units), tr.UnitInstr/1_000_000, tr.OracleCPI(), *out, outFormat)
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, 0)
	}
	return tel.finish()
}

// loadTrace reads a trace file in any known format: the format is
// detected from the bytes themselves (magic prefix for binary codecs,
// then JSON, then gob), so a .bin file renamed to .gob still loads.
func loadTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := trace.DecodeBytes(data)
	if err != nil {
		// The caller handed us a file that is not a trace: that is bad
		// input (exit 3), not an internal failure.
		return nil, resilience.BadInput(fmt.Errorf("load trace %s: %w", path, err))
	}
	return tr, nil
}

// formatForOut picks the trace output format: an explicit -format wins,
// otherwise the extension decides (.json → json, .bin → bin, else gob).
func formatForOut(fs *flag.FlagSet, out, format string) (string, error) {
	if format == "" {
		switch {
		case strings.HasSuffix(out, ".json"):
			return "json", nil
		case strings.HasSuffix(out, ".bin"):
			return "bin", nil
		default:
			return "gob", nil
		}
	}
	for _, name := range trace.FormatNames() {
		if name == format {
			return format, nil
		}
	}
	return "", usageErr(fs, "unknown -format %q (have: %s)", format, strings.Join(trace.FormatNames(), " "))
}

// workersFlag registers the shared -workers knob: how many goroutines
// the compute kernels may use. Results are identical for any value.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines for the compute kernels (0 = GOMAXPROCS, 1 = serial)")
}

func formPhases(path string, seed uint64, workers int) (*trace.Trace, *phase.Phases, error) {
	tr, err := loadTrace(path)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	ph, err := core.FormPhases(tr, cfg)
	return tr, ph, err
}

func cmdPhases(args []string) error {
	fs := newFlagSet("phases")
	path := fs.String("trace", "", "trace file from 'simprof profile'")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := workersFlag(fs)
	tel := telemetryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-trace is required")
	}
	if err := tel.start("phases", args); err != nil {
		return err
	}
	tr, ph, err := formPhases(*path, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d units → %d phases (silhouette %.2f)\n\n",
		tr.Name(), len(tr.Units), ph.K, ph.Silhouette)
	t := report.NewTable("", "Phase", "Units", "Weight", "Mean CPI", "CPI CoV", "LLC MPKI", "Type", "Dominant method")
	weights := ph.Weights()
	sizes := ph.Sizes()
	counters := ph.CounterProfile()
	for h := 0; h < ph.K; h++ {
		dom := ""
		if ms := ph.DominantMethods(h, 1); len(ms) > 0 {
			dom = ms[0]
		}
		t.RowS(fmt.Sprint(h), fmt.Sprint(sizes[h]), fmt.Sprintf("%.1f%%", 100*weights[h]),
			fmt.Sprintf("%.2f", counters[h].CPI.Mean), fmt.Sprintf("%.3f", counters[h].CPI.CoV),
			fmt.Sprintf("%.2f", counters[h].LLCMPKI),
			ph.DominantKind(h).String(), dom)
	}
	t.Render(os.Stdout)
	cov := ph.CoV()
	fmt.Printf("CoV of CPI: population %.3f, weighted %.3f, max %.3f\n",
		cov.Population, cov.Weighted, cov.Max)
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, *workers)
		tel.manifest.Phases = phaseInfo(ph)
	}
	return tel.finish()
}

func cmdSample(args []string) error {
	fs := newFlagSet("sample")
	path := fs.String("trace", "", "trace file")
	n := fs.Int("n", 20, "number of simulation points")
	conf := fs.Float64("confidence", 0.997, "confidence level for the interval")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := workersFlag(fs)
	tel := telemetryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-trace is required")
	}
	if *n <= 0 {
		return usageErr(fs, "-n must be positive, got %d", *n)
	}
	if err := validateConfidence(fs, *conf); err != nil {
		return err
	}
	if err := tel.start("sample", args); err != nil {
		return err
	}
	tr, ph, err := formPhases(*path, *seed, *workers)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	sp, err := core.SelectPoints(ph, *n, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d simulation points across %d phases\n", tr.Name(), sp.Size(), ph.K)
	fmt.Printf("allocation (Eq. 1): %v\n", sp.Alloc)
	fmt.Printf("estimated CPI: %s   (oracle %.4f, error %.2f%%)\n",
		sp.CI(*conf), tr.OracleCPI(), 100*sp.Err(tr))
	fmt.Printf("bootstrap CI:  %s   (distribution-free cross-check)\n",
		sp.BootstrapCI(*conf, 2000, *seed))
	fmt.Printf("simulation point unit ids: %v\n", sp.UnitIDs)
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, *workers)
		tel.manifest.Phases = phaseInfo(ph)
		tel.manifest.Sampling = samplingInfo(ph, sp, *n, *conf)
	}
	return tel.finish()
}

func cmdPlan(args []string) error {
	fs := newFlagSet("plan")
	path := fs.String("trace", "", "trace file")
	errTarget := fs.Float64("err", 0.05, "target relative CPI error")
	conf := fs.Float64("confidence", 0.997, "confidence level")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := workersFlag(fs)
	tel := telemetryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-trace is required")
	}
	if *errTarget <= 0 || *errTarget >= 1 {
		return usageErr(fs, "-err must be in (0,1), got %v", *errTarget)
	}
	if err := validateConfidence(fs, *conf); err != nil {
		return err
	}
	if err := tel.start("plan", args); err != nil {
		return err
	}
	tr, ph, err := formPhases(*path, *seed, *workers)
	if err != nil {
		return err
	}
	nReq, err := sampling.RequiredSampleSize(ph, *errTarget, *conf)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d of %d units needed for ±%.0f%% CPI at %.1f%% confidence\n",
		tr.Name(), nReq, len(tr.Units), 100**errTarget, 100**conf)
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, *workers)
		tel.manifest.Phases = phaseInfo(ph)
	}
	return tel.finish()
}

func cmdCompare(args []string) error {
	fs := newFlagSet("compare")
	path := fs.String("trace", "", "trace file")
	n := fs.Int("n", 20, "sample size for SRS/SimProf")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := workersFlag(fs)
	tel := telemetryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-trace is required")
	}
	if *n <= 0 {
		return usageErr(fs, "-n must be positive, got %d", *n)
	}
	if err := tel.start("compare", args); err != nil {
		return err
	}
	tr, ph, err := formPhases(*path, *seed, *workers)
	if err != nil {
		return err
	}
	sec, err := sampling.Second(tr, sampling.DefaultSecond())
	if err != nil {
		return err
	}
	srs, err := sampling.SRS(tr, *n, *seed)
	if err != nil {
		return err
	}
	code, err := sampling.Code(ph)
	if err != nil {
		return err
	}
	sp, err := sampling.SimProf(ph, *n, *seed)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s — CPI estimates (oracle %.4f)", tr.Name(), tr.OracleCPI()),
		"Approach", "Points", "Est CPI", "Error")
	for _, s := range []sampling.Sample{sec, srs, code, sp.Sample} {
		t.RowS(s.Method, fmt.Sprint(s.Size()), fmt.Sprintf("%.4f", s.EstCPI),
			fmt.Sprintf("%.2f%%", 100*s.Err(tr)))
	}
	t.Render(os.Stdout)
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, *workers)
		tel.manifest.Phases = phaseInfo(ph)
		tel.manifest.Sampling = samplingInfo(ph, sp, *n, core.DefaultConfig().Confidence)
	}
	return tel.finish()
}

func cmdSensitivity(args []string) error {
	fs := newFlagSet("sensitivity")
	bench := fs.String("bench", "cc", "graph benchmark: cc or rank")
	fw := fs.String("framework", "spark", "framework: spark or hadoop")
	scale := fs.Int("graphscale", 19, "Kronecker scale of the Table II inputs")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := workersFlag(fs)
	tel := telemetryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *bench != "cc" && *bench != "rank" {
		return usageErr(fs, "-bench must be cc or rank, got %q", *bench)
	}
	if *fw != "spark" && *fw != "hadoop" {
		return usageErr(fs, "unknown -framework %q (spark or hadoop)", *fw)
	}
	if err := tel.start("sensitivity", args); err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	opts := workloads.Options{}.WithDefaults()
	inputs := synth.TableIIStats(*scale, *seed+99)
	train, refs := inputs[0], inputs[1:]
	fmt.Printf("training on %s, testing %d reference inputs...\n", train.Name, len(refs))
	tr, err := core.ProfileWorkload(*bench, *fw, train, opts, cfg)
	if err != nil {
		return err
	}
	ph, err := core.FormPhases(tr, cfg)
	if err != nil {
		return err
	}
	rep, err := core.InputSensitivity(*bench, *fw, ph, refs, opts, cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s — input sensitivity (threshold %.0f%%)", tr.Name(), 100*rep.Threshold),
		"Phase", "Train CPI", "Sensitive", "Triggering inputs", "Dominant method")
	for h := 0; h < ph.K; h++ {
		var trig []string
		for _, ir := range rep.Inputs {
			if ir.Sensitive[h] {
				trig = append(trig, ir.Input)
			}
		}
		dom := ""
		if ms := ph.DominantMethods(h, 1); len(ms) > 0 {
			dom = ms[0]
		}
		t.RowS(fmt.Sprint(h), fmt.Sprintf("%.2f", rep.Train.Mean[h]),
			fmt.Sprint(rep.Sensitive[h]), strings.Join(trig, ","), dom)
	}
	t.Render(os.Stdout)
	sens, insens := rep.Counts()
	sp, err := core.SelectPoints(ph, 20, cfg)
	if err != nil {
		return err
	}
	kept := rep.SensitivePointFraction(ph, sp.UnitIDs)
	fmt.Printf("%d sensitive, %d insensitive phases; %.0f%% of simulation points can be skipped per reference input\n",
		sens, insens, 100*(1-kept))
	if tel.manifest != nil {
		tel.manifest.Workload = workloadInfo(tr, *seed, *workers)
		tel.manifest.Phases = phaseInfo(ph)
	}
	return tel.finish()
}
