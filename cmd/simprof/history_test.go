package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchText renders raw `go test -bench` output with three samples per
// benchmark, each scaled by mul (1.0 = the nominal timings).
func benchText(mul float64) string {
	var b strings.Builder
	b.WriteString("goos: linux\n")
	nominal := map[string]float64{
		"BenchmarkChooseKParallel": 240e6,
		"BenchmarkForm":            13e6,
	}
	for _, name := range []string{"BenchmarkChooseKParallel", "BenchmarkForm"} {
		base := nominal[name] * mul
		for i := 0; i < 3; i++ {
			// ±2% wobble so the baseline MAD is small but non-zero.
			ns := base * (1 + 0.02*float64(i-1))
			fmt.Fprintf(&b, "%s-8\t10\t%.0f ns/op\t1000 B/op\t10 allocs/op\n", name, ns)
		}
	}
	b.WriteString("PASS\n")
	return b.String()
}

// writeFile writes content under dir and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// handManifest is a small but fully-formed v2 manifest used by the
// history tests, parameterized on the sampling SE so diffs show drift.
func handManifest(se float64) string {
	return fmt.Sprintf(`{
  "version": 2,
  "tool": "simprof compare",
  "build": {"go_version": "go1.24", "revision": "abc123def4567890"},
  "workload": {"benchmark": "wc", "framework": "spark", "seed": 7,
    "workers": 4, "units": 100, "unit_instr": 100000000, "oracle_cpi": 1.5,
    "degraded_fraction": 0},
  "sampling": {"method": "SimProf", "n": 12, "confidence": 0.997,
    "est_cpi": 1.48, "se": %g, "ci_lo": 1.40, "ci_hi": 1.56,
    "oracle_cpi": 1.5, "rel_err": 0.013},
  "metrics": [
    {"name": "cluster.iterations", "kind": "counter", "value": 42}
  ],
  "spans": {"name": "simprof compare", "start_ns": 0, "dur_ns": 5000000, "gid": 1,
    "children": [
      {"name": "phase.form", "start_ns": 100, "dur_ns": 3000000, "gid": 1},
      {"name": "sampling.simprof", "start_ns": 3100000, "dur_ns": 1000000, "gid": 1}
    ]},
  "timer_samples": [
    {"name": "cluster.choosek_k_seconds", "gid": 7, "start_ns": 200, "dur_ns": 900000},
    {"name": "cluster.choosek_k_seconds", "gid": 8, "start_ns": 250, "dur_ns": 950000}
  ]
}`, se)
}

// TestHistoryFlagValidation checks the history subcommands fail through
// the uniform usage-error path.
func TestHistoryFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no-sub", nil, "usage: simprof history"},
		{"unknown-sub", []string{"prune"}, `unknown subcommand "prune"`},
		{"record/no-input", []string{"record"}, "at least one of -manifest or -bench"},
		{"record/unknown-flag", []string{"record", "-wat"}, "usage: simprof history record"},
		{"gate/no-baseline", []string{"gate", "-bench", "x.json"}, "-baseline is required"},
		{"gate/no-bench", []string{"gate", "-baseline", "x.json"}, "-bench is required"},
		{"gate/bad-per-bench", []string{"gate", "-baseline", "x", "-bench", "y", "-per-bench", "oops"}, "usage: simprof history gate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdHistory(tc.args)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "usage: simprof history") {
				t.Fatalf("error %q does not use the uniform usage prefix", err)
			}
		})
	}
}

// TestHistoryRoundTrip exercises record → list → show → diff on a real
// store file with hand-made manifests and raw bench text.
func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "hist.jsonl")
	m1 := writeFile(t, dir, "m1.json", handManifest(0.04))
	m2 := writeFile(t, dir, "m2.json", handManifest(0.06))
	b1 := writeFile(t, dir, "b1.txt", benchText(1.0))
	b2 := writeFile(t, dir, "b2.txt", benchText(1.05))

	if err := cmdHistory([]string{"record", "-store", store, "-manifest", m1, "-bench", b1, "-note", "baseline"}); err != nil {
		t.Fatalf("record #1: %v", err)
	}
	if err := cmdHistory([]string{"record", "-store", store, "-manifest", m2, "-bench", b2}); err != nil {
		t.Fatalf("record #2: %v", err)
	}
	for _, args := range [][]string{
		{"list", "-store", store},
		{"show", "-store", store, "-seq", "1"},
		{"show", "-store", store}, // default: last
		{"diff", "-store", store}, // default: -2 vs -1
		{"diff", "-store", store, "-a", "1", "-b", "2"},
	} {
		if err := cmdHistory(args); err != nil {
			t.Fatalf("history %v: %v", args, err)
		}
	}
	if err := cmdHistory([]string{"show", "-store", store, "-seq", "99"}); err == nil {
		t.Fatal("show -seq 99 on a 2-record store should fail")
	}
}

// TestHistoryGate checks the acceptance contract: the gate passes a
// run identical to its baseline and fails a synthetic 2× slowdown.
func TestHistoryGate(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.txt", benchText(1.0))
	same := writeFile(t, dir, "same.txt", benchText(1.0))
	slow := writeFile(t, dir, "slow.txt", benchText(2.0))

	if err := cmdHistory([]string{"gate", "-baseline", base, "-bench", same}); err != nil {
		t.Fatalf("gate on identical results: %v", err)
	}
	err := cmdHistory([]string{"gate", "-baseline", base, "-bench", slow})
	if err == nil {
		t.Fatal("gate passed a 2× synthetic slowdown")
	}
	if !strings.Contains(err.Error(), "perf gate failed") {
		t.Fatalf("gate failure reads %q", err)
	}

	// A generous per-bench override waves the slow benchmarks through.
	if err := cmdHistory([]string{"gate", "-baseline", base, "-bench", slow,
		"-per-bench", "BenchmarkChooseKParallel=1.5,BenchmarkForm=1.5"}); err != nil {
		t.Fatalf("gate with per-bench overrides: %v", err)
	}

	// SE gate: manifest SE inflating 0.04 → 0.06 is +50%, over a 20% cap.
	m1 := writeFile(t, dir, "m1.json", handManifest(0.04))
	m2 := writeFile(t, dir, "m2.json", handManifest(0.06))
	err = cmdHistory([]string{"gate", "-baseline", base, "-bench", same,
		"-base-manifest", m1, "-cur-manifest", m2, "-max-se-inflation", "0.2"})
	if err == nil {
		t.Fatal("SE gate passed a +50% inflation with a 20% cap")
	}
}

// TestInspectStrippedManifest checks inspect degrades hand-stripped and
// version-skewed manifests to notes instead of failing or panicking.
func TestInspectStrippedManifest(t *testing.T) {
	dir := t.TempDir()

	// All optional sections stripped by hand.
	bare := writeFile(t, dir, "bare.json", `{"version": 2, "tool": "simprof phases", "build": {"go_version": "", "revision": ""}}`)
	if err := cmdInspect([]string{"-manifest", bare}); err != nil {
		t.Fatalf("inspect on stripped manifest: %v", err)
	}

	// Written by a future binary: renders with a note.
	future := writeFile(t, dir, "future.json", `{"version": 99, "tool": "simprof compare", "build": {"go_version": "go9", "revision": "f00"}}`)
	if err := cmdInspect([]string{"-manifest", future}); err != nil {
		t.Fatalf("inspect on future-version manifest: %v", err)
	}

	// Nonsense version and malformed JSON still fail.
	bad := writeFile(t, dir, "bad.json", `{"version": 0, "tool": "x"}`)
	if err := cmdInspect([]string{"-manifest", bad}); err == nil {
		t.Fatal("inspect accepted manifest version 0")
	}
	trunc := writeFile(t, dir, "trunc.json", `{"version": 2,`)
	if err := cmdInspect([]string{"-manifest", trunc}); err == nil {
		t.Fatal("inspect accepted truncated JSON")
	}
}
