package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simprof/internal/obs"
)

// reqtraceManifest builds the fixed manifest behind
// testdata/inspect_reqtrace.golden: a retained request trace with a
// span tree and a metric snapshot whose labeled histogram children are
// wider than any bare metric name — pinning both the request section
// and the name{labels} column alignment.
func reqtraceManifest(t *testing.T) *obs.Manifest {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	r := obs.NewRegistry()
	r.Counter("server.requests", "requests").Add(128)
	hv := r.HistogramVec("server.request_seconds", "request latency by route",
		[]string{"route"}, 0.001, 0.005, 0.01, 0.05, 0.1)
	for i := 0; i < 100; i++ {
		hv.With("/v1/profile").Observe(0.001 + float64(i)*0.001)
	}
	hv.With("/v1/history").Observe(0.002)
	cv := r.CounterVec("reqtrace.retained", "retained", "route", "status_class", "latency_bucket")
	cv.With("/v1/profile", "2xx", "25-100ms").Add(17)
	cv.With("/v1/profile", "5xx", ">=500ms").Add(3)

	return &obs.Manifest{
		Version: obs.ManifestVersion,
		Tool:    "simprofd reqtrace",
		Build:   obs.BuildInfo{GoVersion: "go1.0test", Revision: "deadbeefcafe0123"},
		Request: &obs.RequestInfo{
			ID:      "req-42",
			Route:   "/v1/profile",
			Tenant:  "tenant-a",
			Status:  504,
			Class:   "timeout",
			Bytes:   4096,
			Start:   "2026-01-02T03:04:05.000000006Z",
			Latency: 612.25,

			Stratum:    "/v1/profile|5xx|>=500ms",
			Forced:     true,
			InclusionP: 1,
			Weight:     1,
		},
		Metrics: r.Snapshot(),
		Spans: &obs.Span{
			Name: "request req-42", StartNS: 0, DurNS: 612_250_000, GID: 1,
			Children: []*obs.Span{
				{Name: "phase.form", StartNS: 1_000_000, DurNS: 420_000_000, GID: 1},
				{Name: "sampling.simprof", StartNS: 421_000_000, DurNS: 150_000_000, GID: 1},
			},
		},
	}
}

// TestInspectReqTraceGolden pins the rendered inspect output for a
// retained-trace manifest byte-for-byte (request section, aligned
// labeled-vec rows with p50/p90/p99, span tree). Regenerate with
// UPDATE_GOLDEN=1 after an intentional format change.
func TestInspectReqTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	renderManifest(&buf, reqtraceManifest(t), "", true)

	golden := filepath.Join("testdata", "inspect_reqtrace.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("inspect output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestInspectLabeledVecAlignment: every metric row's value column
// starts at the same offset even when labeled children are far wider
// than the bare names, and labeled histograms carry quantiles.
func TestInspectLabeledVecAlignment(t *testing.T) {
	var buf bytes.Buffer
	renderManifest(&buf, reqtraceManifest(t), "", true)
	out := buf.String()

	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Fatalf("labeled histogram rows lack quantiles:\n%s", out)
	}
	var inMetrics bool
	col := -1
	for _, line := range strings.Split(out, "\n") {
		if line == "metrics:" {
			inMetrics = true
			continue
		}
		if !inMetrics || !strings.HasPrefix(line, "  ") {
			continue
		}
		name := strings.TrimLeft(line, " ")
		valueCol := len(line) - len(name) + strings.IndexAny(name, " ")
		rest := line[valueCol:]
		pad := len(rest) - len(strings.TrimLeft(rest, " "))
		start := valueCol + pad
		if col == -1 {
			col = start
		} else if start != col {
			t.Fatalf("value column drifts: %d then %d on %q\n%s", col, start, line, out)
		}
	}
	if col == -1 {
		t.Fatalf("no metric rows rendered:\n%s", out)
	}
}
