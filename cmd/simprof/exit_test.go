package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simprof/internal/resilience"
)

// TestExitCodeFor: the full exit-code contract, including errors
// buried under %w wrapping — a script must be able to branch on $?
// no matter how deep the failure happened.
func TestExitCodeFor(t *testing.T) {
	fs := newFlagSet("phases")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help", errHelp, 0},
		{"help wrapped", fmt.Errorf("parse: %w", errHelp), 0},
		{"usage", usageErr(fs, "-trace is required"), 2},
		{"usage wrapped", fmt.Errorf("phases: %w", usageErr(fs, "bad")), 2},
		{"bad input", resilience.BadInput(errors.New("not a trace")), 3},
		{"bad input wrapped", fmt.Errorf("load: %w", resilience.BadInput(errors.New("x"))), 3},
		{"timeout", fmt.Errorf("profile: %w", context.DeadlineExceeded), 4},
		{"overload", fmt.Errorf("submit: %w", resilience.ErrOverload), 5},
		{"breaker open", resilience.ErrBreakerOpen, 6},
		{"draining", fmt.Errorf("refused: %w", resilience.ErrDraining), 6},
		{"canceled", fmt.Errorf("run: %w", context.Canceled), 7},
		{"internal", errors.New("boom"), 1},
		{"internal wrapped", fmt.Errorf("outer: %w", os.ErrPermission), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := exitCodeFor(c.err); got != c.want {
				t.Fatalf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
			}
		})
	}
}

// TestUsageErrMessage: moving usageErr behind the typed error must not
// change the message contract the subcommand tests rely on.
func TestUsageErrMessage(t *testing.T) {
	err := usageErr(newFlagSet("sample"), "-n must be positive, got %d", -1)
	want := "usage: simprof sample: -n must be positive, got -1 (run 'simprof sample -h' for flags)"
	if err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
	var ue *usageError
	if !errors.As(err, &ue) {
		t.Fatal("usageErr no longer yields a *usageError")
	}
}

// TestLoadTraceBadInputClass: a file that is not a trace classifies as
// bad input (exit 3), and a missing file stays internal (exit 1) — the
// decode wrapper must not swallow I/O errors into the wrong class.
func TestLoadTraceBadInputClass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.gob")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadTrace(path)
	if err == nil {
		t.Fatal("garbage file decoded")
	}
	if got := exitCodeFor(err); got != 3 {
		t.Fatalf("garbage trace exit code %d, want 3 (bad input); err: %v", got, err)
	}
	if !strings.Contains(err.Error(), "load trace") {
		t.Fatalf("error lost its context: %v", err)
	}

	_, err = loadTrace(filepath.Join(t.TempDir(), "absent.gob"))
	if err == nil {
		t.Fatal("missing file loaded")
	}
	if got := exitCodeFor(err); got != 1 {
		t.Fatalf("missing trace exit code %d, want 1 (internal); err: %v", got, err)
	}
}
