package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"simprof/internal/obs"
	"simprof/internal/obs/traceevent"
	"simprof/internal/report"
)

// cmdInspect renders a telemetry manifest written by another simprof
// run with -telemetry: build and workload provenance, the span tree
// with hot stages, the Neyman allocation table, fault-channel counts
// and the metric snapshot. Decoding is lenient: a manifest written by
// a newer binary, or one with sections stripped, renders what is there
// plus a note — it never fails the whole render.
func cmdInspect(args []string) error {
	fs := newFlagSet("inspect")
	path := fs.String("manifest", "", "telemetry manifest written with -telemetry")
	metrics := fs.Bool("metrics", true, "render the metric snapshot")
	tracePath := fs.String("trace", "", "also export the manifest as Chrome trace-event JSON (Perfetto / about://tracing) to this file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-manifest is required")
	}
	m, note, err := obs.ReadManifestFileLenient(*path)
	if err != nil {
		return err
	}
	renderManifest(os.Stdout, m, note, *metrics)
	if *tracePath != "" {
		if err := traceevent.WriteFile(*tracePath, m); err != nil {
			return err
		}
		fmt.Printf("\ntrace events → %s (load in ui.perfetto.dev)\n", *tracePath)
	}
	return nil
}

// renderManifest writes the human-readable view of a manifest. Missing
// or partially-filled sections degrade to a note line, so inspect can
// render hand-stripped and version-skewed manifests.
func renderManifest(w io.Writer, m *obs.Manifest, note string, withMetrics bool) {
	fmt.Fprintf(w, "%s  (manifest v%d)\n", orUnknown(m.Tool), m.Version)
	if note != "" {
		fmt.Fprintf(w, "note:  %s\n", note)
	}
	if len(m.Args) > 0 {
		fmt.Fprintf(w, "args:  %s\n", strings.Join(m.Args, " "))
	}
	if m.Build.GoVersion == "" && m.Build.Revision == "" {
		fmt.Fprintln(w, "build: (not recorded)")
	} else {
		fmt.Fprintf(w, "build: %s %s", m.Build.GoVersion, shortRev(m.Build.Revision))
		if m.Build.Modified {
			fmt.Fprint(w, " (dirty)")
		}
		fmt.Fprintln(w)
	}

	if ri := m.Request; ri != nil {
		fmt.Fprintf(w, "\nrequest: %s %s status=%d (%s)", ri.ID, ri.Route, ri.Status, ri.Class)
		if ri.Tenant != "" {
			fmt.Fprintf(w, " tenant=%s", ri.Tenant)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  latency %.2fms, %d bytes", ri.Latency, ri.Bytes)
		if ri.Start != "" {
			fmt.Fprintf(w, ", started %s", ri.Start)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  stratum %s", ri.Stratum)
		if ri.Forced {
			fmt.Fprint(w, " (forced keep)")
		}
		fmt.Fprintf(w, ", π=%.4g, weight=%.4g\n", ri.InclusionP, ri.Weight)
	}

	if wl := m.Workload; wl != nil {
		fmt.Fprintf(w, "\nworkload: %s on %s (input %q, seed %d, workers %d)\n",
			wl.Benchmark, wl.Framework, wl.Input, wl.Seed, wl.Workers)
		fmt.Fprintf(w, "  %d units × %dM instructions, oracle CPI %.4f\n",
			wl.Units, wl.UnitInstr/1_000_000, wl.OracleCPI)
		if wl.DegradedFraction > 0 {
			fmt.Fprintf(w, "  degraded units: %.1f%% (%s)\n", 100*wl.DegradedFraction, wl.Quality)
		}
	} else {
		fmt.Fprintln(w, "\nworkload: (not recorded)")
	}

	if fi := m.Faults; fi != nil {
		fmt.Fprintf(w, "\nfaults injected (%s, seed %d):\n", fi.Spec, fi.Seed)
		t := report.NewTable("", "Channel", "Count")
		t.RowS("counters dropped", fmt.Sprint(fi.CountersDropped))
		t.RowS("multiplexed", fmt.Sprint(fi.Multiplexed))
		t.RowS("snapshots lost", fmt.Sprint(fi.SnapshotsLost))
		t.RowS("crashed threads", fmt.Sprint(fi.CrashedThreads))
		t.RowS("units lost", fmt.Sprint(fi.UnitsLost))
		t.RowS("duplicated", fmt.Sprint(fi.Duplicated))
		t.RowS("displaced", fmt.Sprint(fi.Displaced))
		t.Render(w)
		if fi.Repair != "" {
			fmt.Fprintf(w, "  repair: %s\n", fi.Repair)
		}
	}

	if pi := m.Phases; pi != nil {
		fmt.Fprintf(w, "\nphases: k=%d chosen (silhouette %.3f)\n", pi.K, pi.Silhouette)
		if len(pi.KScores) > 0 {
			var parts []string
			for i, s := range pi.KScores {
				mark := ""
				if i+1 == pi.K {
					mark = "*"
				}
				if math.IsNaN(s) {
					parts = append(parts, fmt.Sprintf("k=%d: -", i+1))
					continue
				}
				parts = append(parts, fmt.Sprintf("k=%d: %.3f%s", i+1, s, mark))
			}
			fmt.Fprintf(w, "  sweep: %s\n", strings.Join(parts, "  "))
		}
	}

	if si := m.Sampling; si != nil {
		fmt.Fprintf(w, "\nsampling: %s, n=%d\n", si.Method, si.N)
		fmt.Fprintf(w, "  est CPI %.4f ± %.4f [%.4f, %.4f] at %.1f%% (oracle %.4f, rel err %.2f%%)\n",
			si.EstCPI, si.SE, si.CILo, si.CIHi, 100*si.Confidence, si.OracleCPI, 100*si.RelErr)
		if si.SEInflation > 1 {
			fmt.Fprintf(w, "  SE inflated ×%.2f by mean-imputed strata\n", si.SEInflation)
		}
		if len(si.Strata) > 0 {
			t := report.NewTable("Neyman allocation (Eq. 1)",
				"Phase", "Units", "Measured", "Weight", "Sigma", "Alloc", "Sampled mean", "Imputed")
			for _, s := range si.Strata {
				imputed := ""
				if s.Imputed {
					imputed = "yes"
				}
				t.RowS(fmt.Sprint(s.Phase), fmt.Sprint(s.Units), fmt.Sprint(s.Measured),
					fmt.Sprintf("%.1f%%", 100*s.Weight), fmt.Sprintf("%.3f", s.Sigma),
					fmt.Sprint(s.Alloc), fmt.Sprintf("%.4f", s.SampledMean), imputed)
			}
			t.Render(w)
		} else {
			fmt.Fprintln(w, "  allocation table: (not recorded)")
		}
	}

	if m.Spans != nil {
		fmt.Fprintf(w, "\nspan tree (total %s):\n", fmtDur(m.Spans.Duration()))
		m.Spans.Walk(func(sp *obs.Span, depth int) {
			fmt.Fprintf(w, "  %s%-*s %10s\n", strings.Repeat("  ", depth),
				40-2*depth, sp.Name, fmtDur(sp.Duration()))
		})
		renderHotStages(w, m.Spans)
	} else {
		fmt.Fprintln(w, "\nspan tree: (not recorded)")
	}

	renderTimerSamples(w, m)

	if withMetrics && len(m.Metrics) > 0 {
		fmt.Fprintln(w, "\nmetrics:")
		// Pad to the widest name{labels} so labeled children (which can
		// far exceed the bare-name width) keep the value columns aligned.
		width := 32
		names := make([]string, len(m.Metrics))
		for i, mt := range m.Metrics {
			names[i] = mt.Name
			if lk := mt.LabelsKey(); lk != "" {
				names[i] += "{" + lk + "}"
			}
			if len(names[i]) > width {
				width = len(names[i])
			}
		}
		for i, mt := range m.Metrics {
			switch mt.Kind {
			case "histogram":
				mean := 0.0
				if mt.Value > 0 {
					mean = mt.Sum / mt.Value
				}
				fmt.Fprintf(w, "  %-*s count=%.0f sum=%.4g mean=%.4g%s\n",
					width, names[i], mt.Value, mt.Sum, mean, quantileSuffix(mt))
			default:
				fmt.Fprintf(w, "  %-*s %v\n", width, names[i], mt.Value)
			}
		}
	}
}

// quantileSuffix renders " p50=… p90=… p99=…" for a histogram whose
// buckets made it into the snapshot, and nothing otherwise.
func quantileSuffix(mt obs.Metric) string {
	p50, p90, p99 := mt.Quantile(0.50), mt.Quantile(0.90), mt.Quantile(0.99)
	if math.IsNaN(p50) {
		return ""
	}
	return fmt.Sprintf(" p50=%.4g p90=%.4g p99=%.4g", p50, p90, p99)
}

// renderHotStages lists the stages with the largest self time (span
// duration minus children) — where the run actually went.
func renderHotStages(w io.Writer, root *obs.Span) {
	type stage struct {
		name string
		self time.Duration
		gid  int64
	}
	var stages []stage
	total := root.Duration()
	root.Walk(func(sp *obs.Span, depth int) {
		stages = append(stages, stage{sp.Name, sp.SelfDuration(), sp.GID})
	})
	sort.SliceStable(stages, func(a, b int) bool { return stages[a].self > stages[b].self })
	if len(stages) > 8 {
		stages = stages[:8]
	}
	t := report.NewTable("hot stages (self time)", "Stage", "Self", "Share", "Goroutine")
	for _, s := range stages {
		share := 0.0
		if total > 0 {
			share = float64(s.self) / float64(total)
		}
		gid := "-"
		if s.gid != 0 {
			gid = fmt.Sprint(s.gid)
		}
		t.RowS(s.name, fmtDur(s.self), fmt.Sprintf("%.1f%%", 100*share), gid)
	}
	t.Render(w)
}

// renderTimerSamples summarizes the concurrent timer samples per timer
// name: how many intervals, across how many worker goroutines, and how
// much wall time they cover in total.
func renderTimerSamples(w io.Writer, m *obs.Manifest) {
	if len(m.TimerSamples) == 0 {
		return
	}
	type agg struct {
		count int
		gids  map[int64]bool
		durNS int64
	}
	byName := map[string]*agg{}
	var names []string
	for _, s := range m.TimerSamples {
		a := byName[s.Name]
		if a == nil {
			a = &agg{gids: map[int64]bool{}}
			byName[s.Name] = a
			names = append(names, s.Name)
		}
		a.count++
		a.gids[s.GID] = true
		a.durNS += s.DurNS
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\nworker timer samples (%d intervals", len(m.TimerSamples))
	if m.TimerSamplesDropped > 0 {
		fmt.Fprintf(w, ", %d dropped past the buffer bound", m.TimerSamplesDropped)
	}
	fmt.Fprintln(w, "):")
	t := report.NewTable("", "Timer", "Intervals", "Goroutines", "Total")
	for _, n := range names {
		a := byName[n]
		t.RowS(n, fmt.Sprint(a.count), fmt.Sprint(len(a.gids)), fmtDur(time.Duration(a.durNS)))
	}
	t.Render(w)
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown tool)"
	}
	return s
}

func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
