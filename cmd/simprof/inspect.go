package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"simprof/internal/obs"
	"simprof/internal/report"
)

// cmdInspect renders a telemetry manifest written by another simprof
// run with -telemetry: build and workload provenance, the span tree
// with hot stages, the Neyman allocation table, fault-channel counts
// and the metric snapshot.
func cmdInspect(args []string) error {
	fs := newFlagSet("inspect")
	path := fs.String("manifest", "", "telemetry manifest written with -telemetry")
	metrics := fs.Bool("metrics", true, "render the metric snapshot")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usageErr(fs, "-manifest is required")
	}
	m, err := obs.ReadManifestFile(*path)
	if err != nil {
		return err
	}
	renderManifest(os.Stdout, m, *metrics)
	return nil
}

func renderManifest(w *os.File, m *obs.Manifest, withMetrics bool) {
	fmt.Fprintf(w, "%s  (manifest v%d)\n", m.Tool, m.Version)
	if len(m.Args) > 0 {
		fmt.Fprintf(w, "args:  %s\n", strings.Join(m.Args, " "))
	}
	fmt.Fprintf(w, "build: %s %s", m.Build.GoVersion, shortRev(m.Build.Revision))
	if m.Build.Modified {
		fmt.Fprint(w, " (dirty)")
	}
	fmt.Fprintln(w)

	if wl := m.Workload; wl != nil {
		fmt.Fprintf(w, "\nworkload: %s on %s (input %q, seed %d, workers %d)\n",
			wl.Benchmark, wl.Framework, wl.Input, wl.Seed, wl.Workers)
		fmt.Fprintf(w, "  %d units × %dM instructions, oracle CPI %.4f\n",
			wl.Units, wl.UnitInstr/1_000_000, wl.OracleCPI)
		if wl.DegradedFraction > 0 {
			fmt.Fprintf(w, "  degraded units: %.1f%% (%s)\n", 100*wl.DegradedFraction, wl.Quality)
		}
	}

	if fi := m.Faults; fi != nil {
		fmt.Fprintf(w, "\nfaults injected (%s, seed %d):\n", fi.Spec, fi.Seed)
		t := report.NewTable("", "Channel", "Count")
		t.RowS("counters dropped", fmt.Sprint(fi.CountersDropped))
		t.RowS("multiplexed", fmt.Sprint(fi.Multiplexed))
		t.RowS("snapshots lost", fmt.Sprint(fi.SnapshotsLost))
		t.RowS("crashed threads", fmt.Sprint(fi.CrashedThreads))
		t.RowS("units lost", fmt.Sprint(fi.UnitsLost))
		t.RowS("duplicated", fmt.Sprint(fi.Duplicated))
		t.RowS("displaced", fmt.Sprint(fi.Displaced))
		t.Render(w)
		if fi.Repair != "" {
			fmt.Fprintf(w, "  repair: %s\n", fi.Repair)
		}
	}

	if pi := m.Phases; pi != nil {
		fmt.Fprintf(w, "\nphases: k=%d chosen (silhouette %.3f)\n", pi.K, pi.Silhouette)
		if len(pi.KScores) > 0 {
			var parts []string
			for i, s := range pi.KScores {
				mark := ""
				if i+1 == pi.K {
					mark = "*"
				}
				if math.IsNaN(s) {
					parts = append(parts, fmt.Sprintf("k=%d: -", i+1))
					continue
				}
				parts = append(parts, fmt.Sprintf("k=%d: %.3f%s", i+1, s, mark))
			}
			fmt.Fprintf(w, "  sweep: %s\n", strings.Join(parts, "  "))
		}
	}

	if si := m.Sampling; si != nil {
		fmt.Fprintf(w, "\nsampling: %s, n=%d\n", si.Method, si.N)
		fmt.Fprintf(w, "  est CPI %.4f ± %.4f [%.4f, %.4f] at %.1f%% (oracle %.4f, rel err %.2f%%)\n",
			si.EstCPI, si.SE, si.CILo, si.CIHi, 100*si.Confidence, si.OracleCPI, 100*si.RelErr)
		if si.SEInflation > 1 {
			fmt.Fprintf(w, "  SE inflated ×%.2f by mean-imputed strata\n", si.SEInflation)
		}
		if len(si.Strata) > 0 {
			t := report.NewTable("Neyman allocation (Eq. 1)",
				"Phase", "Units", "Measured", "Weight", "Sigma", "Alloc", "Sampled mean", "Imputed")
			for _, s := range si.Strata {
				imputed := ""
				if s.Imputed {
					imputed = "yes"
				}
				t.RowS(fmt.Sprint(s.Phase), fmt.Sprint(s.Units), fmt.Sprint(s.Measured),
					fmt.Sprintf("%.1f%%", 100*s.Weight), fmt.Sprintf("%.3f", s.Sigma),
					fmt.Sprint(s.Alloc), fmt.Sprintf("%.4f", s.SampledMean), imputed)
			}
			t.Render(w)
		}
	}

	if m.Spans != nil {
		fmt.Fprintf(w, "\nspan tree (total %s):\n", fmtDur(m.Spans.Duration()))
		m.Spans.Walk(func(sp *obs.Span, depth int) {
			fmt.Fprintf(w, "  %s%-*s %10s\n", strings.Repeat("  ", depth),
				40-2*depth, sp.Name, fmtDur(sp.Duration()))
		})
		renderHotStages(w, m.Spans)
	}

	if withMetrics && len(m.Metrics) > 0 {
		fmt.Fprintln(w, "\nmetrics:")
		for _, mt := range m.Metrics {
			switch mt.Kind {
			case "histogram":
				mean := 0.0
				if mt.Value > 0 {
					mean = mt.Sum / mt.Value
				}
				fmt.Fprintf(w, "  %-32s count=%.0f sum=%.4g mean=%.4g\n", mt.Name, mt.Value, mt.Sum, mean)
			default:
				fmt.Fprintf(w, "  %-32s %v\n", mt.Name, mt.Value)
			}
		}
	}
}

// renderHotStages lists the stages with the largest self time (span
// duration minus children) — where the run actually went.
func renderHotStages(w *os.File, root *obs.Span) {
	type stage struct {
		name string
		self time.Duration
	}
	var stages []stage
	total := root.Duration()
	root.Walk(func(sp *obs.Span, depth int) {
		stages = append(stages, stage{sp.Name, sp.SelfDuration()})
	})
	sort.SliceStable(stages, func(a, b int) bool { return stages[a].self > stages[b].self })
	if len(stages) > 8 {
		stages = stages[:8]
	}
	t := report.NewTable("hot stages (self time)", "Stage", "Self", "Share")
	for _, s := range stages {
		share := 0.0
		if total > 0 {
			share = float64(s.self) / float64(total)
		}
		t.RowS(s.name, fmtDur(s.self), fmt.Sprintf("%.1f%%", 100*share))
	}
	t.Render(w)
}

func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
