package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"

	"simprof/internal/faults"
	"simprof/internal/obs"
	"simprof/internal/obs/traceevent"
	"simprof/internal/phase"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// telemetry carries the observability knobs shared by every simprof
// subcommand: -telemetry writes a JSON run manifest, -pprof serves
// net/http/pprof plus an expvar snapshot of the obs registry. Either
// flag enables the obs subsystem; with both empty the pipeline runs
// with the allocation-free no-op sink.
type telemetry struct {
	manifestPath string
	pprofAddr    string
	tracePath    string
	manifest     *obs.Manifest
	root         *obs.Span
}

// telemetryFlags registers the shared observability flags.
func telemetryFlags(fs *flag.FlagSet) *telemetry {
	t := &telemetry{}
	fs.StringVar(&t.manifestPath, "telemetry", "",
		"write a JSON run manifest (span tree, metrics, allocation tables) to this file")
	fs.StringVar(&t.pprofAddr, "pprof", "",
		"serve net/http/pprof and an expvar snapshot of the telemetry registry on this address (e.g. localhost:6060)")
	return t
}

// telemetryFlagsWithTrace additionally registers -trace, the Chrome
// trace-event export. Only subcommands that do not already use -trace
// for their input trace file (profile) can offer it; the others export
// via 'simprof inspect -trace'.
func telemetryFlagsWithTrace(fs *flag.FlagSet) *telemetry {
	t := telemetryFlags(fs)
	fs.StringVar(&t.tracePath, "trace", "",
		"export the run's span tree and worker timer samples as Chrome trace-event JSON (Perfetto / about://tracing) to this file")
	return t
}

// start enables telemetry (when requested), opens the run's root span
// and starts the pprof server.
func (t *telemetry) start(cmd string, args []string) error {
	if t.manifestPath == "" && t.pprofAddr == "" && t.tracePath == "" {
		return nil
	}
	obs.Enable()
	if t.pprofAddr != "" {
		if err := servePprof(t.pprofAddr); err != nil {
			return err
		}
	}
	t.manifest = obs.NewManifest("simprof "+cmd, args)
	t.root = obs.StartRun("simprof " + cmd)
	return nil
}

// finish closes the root span, snapshots metrics and spans into the
// manifest and writes it. A no-op when telemetry was not requested.
func (t *telemetry) finish() error {
	if t.manifest == nil {
		return nil
	}
	t.root.End()
	t.manifest.Finalize()
	if t.manifestPath != "" {
		if err := t.manifest.WriteFile(t.manifestPath); err != nil {
			return err
		}
		fmt.Printf("telemetry manifest → %s\n", t.manifestPath)
	}
	if t.tracePath != "" {
		if err := traceevent.WriteFile(t.tracePath, t.manifest); err != nil {
			return err
		}
		fmt.Printf("trace events → %s (load in ui.perfetto.dev)\n", t.tracePath)
	}
	return nil
}

// expvar publication is process-global; guard against double Publish
// when tests start several servers.
var pprofOnce sync.Once

// servePprof binds addr and serves the default mux (pprof handlers +
// expvar) in the background for the lifetime of the process. Binding
// errors surface immediately instead of dying silently in a goroutine.
func servePprof(addr string) error {
	pprofOnce.Do(func() {
		expvar.Publish("simprof_obs", expvar.Func(func() any {
			return obs.Default().Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: listen %s: %w", addr, err)
	}
	fmt.Printf("pprof + expvar on http://%s/debug/pprof\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}

// workloadInfo fills the manifest's workload section from a trace.
func workloadInfo(tr *trace.Trace, seed uint64, workers int) *obs.WorkloadInfo {
	return &obs.WorkloadInfo{
		Benchmark:        tr.Benchmark,
		Framework:        tr.Framework,
		Input:            tr.Input,
		Seed:             seed,
		Workers:          workers,
		Units:            len(tr.Units),
		UnitInstr:        tr.UnitInstr,
		OracleCPI:        tr.OracleCPI(),
		DegradedFraction: tr.DegradedFraction(),
		Quality:          tr.Summarize().String(),
	}
}

// phaseInfo fills the manifest's phase-formation section.
func phaseInfo(ph *phase.Phases) *obs.PhaseInfo {
	return &obs.PhaseInfo{
		K:                ph.K,
		Silhouette:       ph.Silhouette,
		KScores:          ph.KScores,
		DegradedFraction: ph.DegradedFraction(),
	}
}

// faultInfo fills the manifest's fault-injection section.
func faultInfo(cfg faults.Config, rep faults.Report, repair trace.RepairReport) *obs.FaultInfo {
	fi := &obs.FaultInfo{
		Spec:            cfg.String(),
		Seed:            cfg.Seed,
		CountersDropped: rep.CountersDropped,
		Multiplexed:     rep.Multiplexed,
		SnapshotsLost:   rep.SnapshotsLost,
		CrashedThreads:  rep.CrashedThreads,
		UnitsLost:       rep.UnitsLost,
		Duplicated:      rep.Duplicated,
		Displaced:       rep.Displaced,
	}
	if repair.Changed() {
		fi.Repair = repair.String()
	}
	return fi
}

// samplingInfo fills the manifest's sampling section, including the
// per-stratum Neyman allocation table.
func samplingInfo(ph *phase.Phases, sp sampling.Stratified, n int, conf float64) *obs.SamplingInfo {
	iv := sp.CI(conf)
	si := &obs.SamplingInfo{
		Method:      sp.Method,
		N:           n,
		Confidence:  conf,
		EstCPI:      sp.EstCPI,
		SE:          sp.SE,
		CILo:        iv.Lo(),
		CIHi:        iv.Hi(),
		OracleCPI:   ph.Trace.OracleCPI(),
		RelErr:      sp.Err(ph.Trace),
		SEInflation: sp.SEInflation,
	}
	Nh := ph.Sizes()
	measured := ph.MeasuredSizes()
	weights := ph.Weights()
	for h := 0; h < ph.K; h++ {
		si.Strata = append(si.Strata, obs.StratumInfo{
			Phase:       h,
			Units:       Nh[h],
			Measured:    measured[h],
			Weight:      weights[h],
			Sigma:       stats.StdDev(ph.PhaseCPIs(h)),
			Alloc:       sp.Alloc[h],
			SampledMean: sp.PhaseMean[h],
			Imputed:     sp.Imputed[h],
		})
	}
	return si
}
