package main

import (
	"fmt"
	"os"
	"time"

	"simprof/internal/history"
	"simprof/internal/obs"
	"simprof/internal/report"
)

// defaultStorePath is where the history subcommands keep the
// append-only JSONL run store unless -store says otherwise.
const defaultStorePath = "simprof_history.jsonl"

// cmdHistory dispatches the cross-run observability subcommands:
//
//	simprof history record -manifest run.json [-bench bench.json]
//	simprof history list
//	simprof history show [-seq N]
//	simprof history diff [-a -2 -b -1]
//	simprof history gate -baseline BENCH_pipeline.json -bench cur.json
func cmdHistory(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: simprof history <record|list|show|diff|gate> [flags] (run 'simprof history <sub> -h' for flags)")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "record":
		return cmdHistoryRecord(rest)
	case "list":
		return cmdHistoryList(rest)
	case "show":
		return cmdHistoryShow(rest)
	case "diff":
		return cmdHistoryDiff(rest)
	case "gate":
		return cmdHistoryGate(rest)
	default:
		return fmt.Errorf("usage: simprof history: unknown subcommand %q (record, list, show, diff or gate)", sub)
	}
}

// loadBenchFile parses a benchmark result file: `go test -json` output
// (the format scripts/bench.sh writes) or plain -bench text.
func loadBenchFile(path string) ([]history.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return history.ParseTestJSON(f)
}

func cmdHistoryRecord(args []string) error {
	fs := newFlagSet("history record")
	store := fs.String("store", defaultStorePath, "history store (JSONL, appended to)")
	manifestPath := fs.String("manifest", "", "telemetry manifest to record (written with -telemetry)")
	benchPath := fs.String("bench", "", "benchmark results to attach (go test -json output, e.g. BENCH_pipeline.json)")
	note := fs.String("note", "", "free-form note stored with the record")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *manifestPath == "" && *benchPath == "" {
		return usageErr(fs, "at least one of -manifest or -bench is required")
	}
	var m *obs.Manifest
	if *manifestPath != "" {
		var note string
		var err error
		m, note, err = obs.ReadManifestFileLenient(*manifestPath)
		if err != nil {
			return err
		}
		if note != "" {
			fmt.Fprintf(os.Stderr, "simprof: history record: note: %s\n", note)
		}
	}
	r := history.FromManifest(m)
	r.Note = *note
	if *benchPath != "" {
		rs, err := loadBenchFile(*benchPath)
		if err != nil {
			return err
		}
		if len(rs) == 0 {
			return fmt.Errorf("history record: %s holds no benchmark results", *benchPath)
		}
		r.Bench = rs
	}
	r, err := history.Open(*store).Append(r)
	if err != nil {
		return err
	}
	fmt.Printf("recorded run #%d (key %s, %d bench results) → %s\n",
		r.Seq, r.Key, len(r.Bench), *store)
	return nil
}

func cmdHistoryList(args []string) error {
	fs := newFlagSet("history list")
	store := fs.String("store", defaultStorePath, "history store (JSONL)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	recs, skipped, err := history.Open(*store).Records()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("%s: no records\n", *store)
		return nil
	}
	t := report.NewTable(fmt.Sprintf("%s — %d records", *store, len(recs)),
		"Seq", "Time", "Key", "Bench", "Note")
	for _, r := range recs {
		t.RowS(fmt.Sprint(r.Seq), r.Time, r.Key, fmt.Sprint(len(r.Bench)), r.Note)
	}
	t.Render(os.Stdout)
	if skipped > 0 {
		fmt.Printf("note: skipped %d corrupt/truncated line(s)\n", skipped)
	}
	return nil
}

func cmdHistoryShow(args []string) error {
	fs := newFlagSet("history show")
	store := fs.String("store", defaultStorePath, "history store (JSONL)")
	seq := fs.Int("seq", 0, "record to show (0 = last, negative counts from the end)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	r, err := history.Open(*store).Get(*seq)
	if err != nil {
		return err
	}
	fmt.Printf("record #%d  %s  key %s\n", r.Seq, r.Time, r.Key)
	if r.Note != "" {
		fmt.Printf("note: %s\n", r.Note)
	}
	if r.Manifest != nil {
		fmt.Println()
		renderManifest(os.Stdout, r.Manifest, "", true)
	}
	if len(r.Bench) > 0 {
		t := report.NewTable(fmt.Sprintf("bench results (%d)", len(r.Bench)),
			"Benchmark", "Iters", "ns/op", "B/op", "allocs/op")
		for _, b := range r.Bench {
			t.RowS(b.Name, fmt.Sprint(b.Iters), fmtNs(b.NsPerOp),
				fmt.Sprintf("%.0f", b.BytesPerOp), fmt.Sprintf("%.0f", b.AllocsPerOp))
		}
		t.Render(os.Stdout)
	}
	return nil
}

func cmdHistoryDiff(args []string) error {
	fs := newFlagSet("history diff")
	store := fs.String("store", defaultStorePath, "history store (JSONL)")
	aSeq := fs.Int("a", -2, "reference record (negative counts from the end)")
	bSeq := fs.Int("b", -1, "current record")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	st := history.Open(*store)
	a, err := st.Get(*aSeq)
	if err != nil {
		return err
	}
	b, err := st.Get(*bSeq)
	if err != nil {
		return err
	}
	renderDiff(os.Stdout, history.Compute(a, b))
	return nil
}

// renderDiff writes the cross-run comparison: stage-level span deltas,
// changed metrics, estimate-quality drift and benchmark medians.
func renderDiff(w *os.File, d *history.Diff) {
	fmt.Fprintf(w, "diff: #%d (%s) → #%d (%s)\n", d.A.Seq, d.A.Key, d.B.Seq, d.B.Key)

	if len(d.Spans) > 0 {
		t := report.NewTable("stages", "Stage", "A", "B", "Δ", "Ratio")
		for _, sd := range d.Spans {
			a, b, delta, ratio := "-", "-", "", ""
			if sd.ADurNS >= 0 {
				a = fmtDur(time.Duration(sd.ADurNS))
			}
			if sd.BDurNS >= 0 {
				b = fmtDur(time.Duration(sd.BDurNS))
			}
			if sd.ADurNS >= 0 && sd.BDurNS >= 0 {
				delta = fmtDurSigned(sd.DeltaNS)
				if sd.Ratio > 0 {
					ratio = fmt.Sprintf("%.2f×", sd.Ratio)
				}
			}
			t.RowS(sd.Path, a, b, delta, ratio)
		}
		t.Render(w)
	}

	var changed []history.MetricDelta
	for _, md := range d.Metrics {
		if md.Delta != 0 || md.OnlyIn != "" {
			changed = append(changed, md)
		}
	}
	if len(changed) > 0 {
		t := report.NewTable(fmt.Sprintf("metrics (%d changed of %d)", len(changed), len(d.Metrics)),
			"Metric", "Kind", "A", "B", "Δ")
		for _, md := range changed {
			a, b := fmt.Sprintf("%.6g", md.A), fmt.Sprintf("%.6g", md.B)
			switch md.OnlyIn {
			case "a":
				b = "-"
			case "b":
				a = "-"
			}
			t.RowS(md.Name, md.Kind, a, b, fmt.Sprintf("%+.6g", md.Delta))
		}
		t.Render(w)
	}

	if sd := d.Sampling; sd != nil {
		fmt.Fprintln(w, "\nestimate quality:")
		if sd.A != nil && sd.B != nil {
			fmt.Fprintf(w, "  est CPI %.4f → %.4f (drift %+.4f)\n", sd.A.EstCPI, sd.B.EstCPI, sd.EstDrift)
			fmt.Fprintf(w, "  SE      %.4f → %.4f (×%.2f)\n", sd.A.SE, sd.B.SE, sd.SERatio)
			fmt.Fprintf(w, "  CI width %.4f → %.4f, rel err %.2f%% → %.2f%%\n",
				sd.CIWidthA, sd.CIWidthB, 100*sd.RelErrA, 100*sd.RelErrB)
		} else {
			fmt.Fprintln(w, "  sampling section present in only one run")
		}
	}

	if len(d.Bench) > 0 {
		t := report.NewTable("benchmarks (median ns/op)", "Benchmark", "A", "B", "Ratio", "Samples")
		for _, bd := range d.Bench {
			a, b, ratio := "-", "-", ""
			if bd.ANs >= 0 {
				a = fmtNs(bd.ANs)
			}
			if bd.BNs >= 0 {
				b = fmtNs(bd.BNs)
			}
			if bd.Ratio > 0 {
				ratio = fmt.Sprintf("%.2f×", bd.Ratio)
			}
			t.RowS(bd.Name, a, b, ratio, fmt.Sprintf("%d/%d", bd.ASamples, bd.BSamples))
		}
		t.Render(w)
	}
}

func cmdHistoryGate(args []string) error {
	fs := newFlagSet("history gate")
	baseline := fs.String("baseline", "", "baseline benchmark results (go test -json, e.g. the committed BENCH_pipeline.json)")
	benchPath := fs.String("bench", "", "current benchmark results to gate")
	maxSlowdown := fs.Float64("max-slowdown", history.DefaultGateOptions().MaxSlowdown,
		"minimum allowed slowdown fraction before a benchmark fails (0.25 = +25%)")
	madk := fs.Float64("madk", history.DefaultGateOptions().MADK,
		"noise multiplier: per-benchmark headroom is max(max-slowdown, madk·MAD/median)")
	perBench := fs.String("per-bench", "", `per-benchmark threshold overrides, "name=fraction[,name=fraction...]"`)
	baseManifest := fs.String("base-manifest", "", "baseline telemetry manifest for the SE gate (optional)")
	curManifest := fs.String("cur-manifest", "", "current telemetry manifest for the SE gate (optional)")
	maxSEInfl := fs.Float64("max-se-inflation", 0.5,
		"allowed standard-error inflation over the baseline manifest (0 disables)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *baseline == "" {
		return usageErr(fs, "-baseline is required")
	}
	if *benchPath == "" {
		return usageErr(fs, "-bench is required")
	}
	pb, err := history.ParsePerBench(*perBench)
	if err != nil {
		return usageErr(fs, "%v", err)
	}
	base, err := loadBenchFile(*baseline)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("history gate: baseline %s holds no benchmark results", *baseline)
	}
	cur, err := loadBenchFile(*benchPath)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("history gate: %s holds no benchmark results", *benchPath)
	}
	opts := history.GateOptions{MaxSlowdown: *maxSlowdown, MADK: *madk, PerBench: pb, MaxSEInflation: *maxSEInfl}
	rep := history.Gate(base, cur, opts)
	if *baseManifest != "" && *curManifest != "" {
		bm, _, err := obs.ReadManifestFileLenient(*baseManifest)
		if err != nil {
			return err
		}
		cm, _, err := obs.ReadManifestFileLenient(*curManifest)
		if err != nil {
			return err
		}
		rep.SE = history.GateSE(bm, cm, opts.MaxSEInflation)
		if rep.SE != nil && rep.SE.Regressed {
			rep.Failed = true
		}
	}
	renderGate(os.Stdout, rep)
	if rep.Failed {
		return fmt.Errorf("perf gate failed (see table above)")
	}
	fmt.Println("perf gate: ok")
	return nil
}

// renderGate writes the per-benchmark verdicts and the SE gate row.
func renderGate(w *os.File, rep *history.GateReport) {
	t := report.NewTable("perf gate (median-of-N vs baseline, MAD-scaled headroom)",
		"Benchmark", "Base", "Cur", "Ratio", "Noise", "Allowed", "Status")
	for _, r := range rep.Rows {
		base, cur, ratio := "-", "-", ""
		if r.BaseNs >= 0 {
			base = fmtNs(r.BaseNs)
		}
		if r.CurNs >= 0 {
			cur = fmtNs(r.CurNs)
		}
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.2f×", r.Ratio)
		}
		t.RowS(r.Name, base, cur, ratio,
			fmt.Sprintf("%.1f%%", 100*r.Noise),
			fmt.Sprintf("+%.0f%%", 100*r.Threshold), r.Status)
	}
	t.Render(w)
	if rep.SE != nil {
		status := "ok"
		if rep.SE.Regressed {
			status = "regressed"
		}
		fmt.Fprintf(w, "SE gate: %.4f → %.4f (inflation %+.1f%%, allowed +%.0f%%) %s\n",
			rep.SE.BaseSE, rep.SE.CurSE, 100*rep.SE.Inflation, 100*rep.SE.MaxInflation, status)
	}
}

// fmtNs renders an ns/op quantity with a unit that keeps 3-4
// significant digits readable across the ns–s range.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}

// fmtDurSigned renders a nanosecond delta with an explicit sign.
func fmtDurSigned(ns int64) string {
	if ns < 0 {
		return "-" + fmtDur(time.Duration(-ns))
	}
	return "+" + fmtDur(time.Duration(ns))
}
