package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simprof/internal/core"
	"simprof/internal/obs"
	"simprof/internal/obs/traceevent"
	"simprof/internal/workloads"
)

// TestFlagValidation checks that every bad flag value fails through the
// uniform "usage: simprof <cmd>: ..." error path — no panics, no silent
// defaults, no os.Exit from inside flag parsing.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) error
		args []string
		want string
	}{
		{"profile/no-out", cmdProfile, []string{"-bench", "wc"}, "usage: simprof profile"},
		{"profile/bad-bench", cmdProfile, []string{"-bench", "nope", "-out", os.DevNull}, `unknown -bench "nope"`},
		{"profile/bad-framework", cmdProfile, []string{"-framework", "flink", "-out", os.DevNull}, `unknown -framework "flink"`},
		{"profile/bad-faults", cmdProfile, []string{"-out", os.DevNull, "-faults", "bogus=="}, "usage: simprof profile"},
		{"profile/unknown-flag", cmdProfile, []string{"-wat"}, "usage: simprof profile"},
		{"profile/bad-format", cmdProfile, []string{"-out", os.DevNull, "-format", "xml"}, `unknown -format "xml"`},
		{"phases/no-trace", cmdPhases, []string{}, "usage: simprof phases"},
		{"sample/no-trace", cmdSample, []string{"-n", "5"}, "usage: simprof sample"},
		{"sample/zero-n", cmdSample, []string{"-trace", "x.gob", "-n", "0"}, "-n must be positive"},
		{"sample/neg-n", cmdSample, []string{"-trace", "x.gob", "-n", "-3"}, "-n must be positive"},
		{"sample/bad-confidence", cmdSample, []string{"-trace", "x.gob", "-confidence", "1.5"}, "-confidence must be in (0,1)"},
		{"plan/no-trace", cmdPlan, []string{}, "usage: simprof plan"},
		{"plan/err-zero", cmdPlan, []string{"-trace", "x.gob", "-err", "0"}, "-err must be in (0,1)"},
		{"plan/err-one", cmdPlan, []string{"-trace", "x.gob", "-err", "1"}, "-err must be in (0,1)"},
		{"compare/zero-n", cmdCompare, []string{"-trace", "x.gob", "-n", "0"}, "-n must be positive"},
		{"sensitivity/bad-bench", cmdSensitivity, []string{"-bench", "wc"}, "-bench must be cc or rank"},
		{"sensitivity/bad-framework", cmdSensitivity, []string{"-bench", "cc", "-framework", "f"}, `unknown -framework "f"`},
		{"inspect/no-manifest", cmdInspect, []string{}, "usage: simprof inspect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(tc.args)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "usage: simprof "+strings.SplitN(tc.name, "/", 2)[0]) {
				t.Fatalf("error %q does not use the uniform usage prefix", err)
			}
		})
	}
}

// TestHelpFlag checks -h prints usage and resolves to errHelp (exit 0),
// not a failure.
func TestHelpFlag(t *testing.T) {
	if err := cmdSample([]string{"-h"}); err != errHelp {
		t.Fatalf("-h: got %v, want errHelp", err)
	}
}

// smallTrace profiles a scaled-down wc_spark run and writes it as a gob
// trace for CLI tests.
func smallTrace(t *testing.T) string {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	opts := workloads.Options{Cores: 4, TextBytes: 48 << 20}
	in, err := workloads.DefaultInput("wc", opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.ProfileWorkload("wc", "spark", in, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wc_sp.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeGob(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestProfileFormats checks the -format flag and the extension defaults
// on 'simprof profile', and that every written file loads back through
// loadTrace's magic-byte detection regardless of its extension.
func TestProfileFormats(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name      string
		out       string
		format    string
		wantMagic string
	}{
		{"ext-bin", "wc.bin", "", "SPTB"},
		{"ext-json", "wc.json", "", "{"},
		{"ext-gob", "wc.gob", "", ""},
		{"explicit-bin-odd-ext", "wc2.gob", "bin", "SPTB"},
		{"explicit-json-odd-ext", "wc2.trace", "json", "{"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.out)
			args := []string{"-bench", "wc", "-framework", "spark", "-seed", "7",
				"-textbytes", "50331648", "-out", out}
			if tc.format != "" {
				args = append(args, "-format", tc.format)
			}
			if err := cmdProfile(args); err != nil {
				t.Fatalf("profile: %v", err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantMagic != "" && !strings.HasPrefix(string(data), tc.wantMagic) {
				t.Fatalf("file starts with % x, want prefix %q", data[:8], tc.wantMagic)
			}
			tr, err := loadTrace(out)
			if err != nil {
				t.Fatalf("loadTrace: %v", err)
			}
			if len(tr.Units) == 0 {
				t.Fatal("loaded trace has no units")
			}
		})
	}
}

// TestLoadTraceErrors checks truncated and foreign files fail with
// errors that name the file and the problem, not a panic or a bare EOF.
func TestLoadTraceErrors(t *testing.T) {
	dir := t.TempDir()
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, []byte("SPTB\x01\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "foreign.trace")
	if err := os.WriteFile(foreign, []byte("\x7fELF not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ path, want string }{
		{trunc, "truncated"},
		{foreign, "unrecognized trace format"},
		{filepath.Join(dir, "missing.bin"), "no such file"},
	} {
		_, err := loadTrace(tc.path)
		if err == nil {
			t.Fatalf("%s: expected error containing %q, got nil", tc.path, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not contain %q", tc.path, err, tc.want)
		}
	}
}

// TestCompareTelemetryInspectRoundTrip runs 'simprof compare -telemetry'
// against a real (small) trace, decodes the manifest it wrote, checks
// the structured sections, and renders it back through 'simprof
// inspect'.
func TestCompareTelemetryInspectRoundTrip(t *testing.T) {
	defer obs.Disable()
	trPath := smallTrace(t)
	mPath := filepath.Join(t.TempDir(), "run.json")

	args := []string{"-trace", trPath, "-n", "12", "-seed", "7", "-telemetry", mPath}
	if err := cmdCompare(args); err != nil {
		t.Fatalf("compare: %v", err)
	}

	m, err := obs.ReadManifestFile(mPath)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	if m.Tool != "simprof compare" {
		t.Errorf("tool = %q", m.Tool)
	}
	if m.Build.GoVersion == "" {
		t.Error("build info missing go version")
	}
	if m.Workload == nil || m.Workload.Benchmark != "wc" || m.Workload.Units == 0 {
		t.Errorf("workload section incomplete: %+v", m.Workload)
	}
	if m.Phases == nil || m.Phases.K < 1 || len(m.Phases.KScores) == 0 {
		t.Fatalf("phase section incomplete: %+v", m.Phases)
	}
	if m.Sampling == nil || m.Sampling.Method != "SimProf" || m.Sampling.N != 12 {
		t.Fatalf("sampling section incomplete: %+v", m.Sampling)
	}
	if len(m.Sampling.Strata) != m.Phases.K {
		t.Errorf("allocation table has %d rows, want k=%d", len(m.Sampling.Strata), m.Phases.K)
	}
	total := 0
	for _, s := range m.Sampling.Strata {
		total += s.Alloc
	}
	if total != m.Sampling.N {
		t.Errorf("allocations sum to %d, want n=%d", total, m.Sampling.N)
	}
	if m.Sampling.CILo > m.Sampling.EstCPI || m.Sampling.CIHi < m.Sampling.EstCPI {
		t.Errorf("CI [%v, %v] does not bracket estimate %v", m.Sampling.CILo, m.Sampling.CIHi, m.Sampling.EstCPI)
	}
	if m.Spans == nil || len(m.Spans.Children) == 0 {
		t.Fatal("manifest has no span tree")
	}
	found := map[string]bool{}
	m.Spans.Walk(func(sp *obs.Span, depth int) { found[sp.Name] = true })
	for _, want := range []string{"simprof compare", "phase.form", "phase.cluster", "sampling.simprof"} {
		if !found[want] {
			t.Errorf("span tree missing %q", want)
		}
	}
	if len(m.Metrics) == 0 {
		t.Error("manifest has no metrics")
	}

	if err := cmdInspect([]string{"-manifest", mPath}); err != nil {
		t.Fatalf("inspect: %v", err)
	}

	// Export the same manifest as Chrome trace events via inspect and
	// check the schema plus the span-duration sum-match invariant.
	tPath := filepath.Join(t.TempDir(), "run_trace.json")
	if err := cmdInspect([]string{"-manifest", mPath, "-trace", tPath}); err != nil {
		t.Fatalf("inspect -trace: %v", err)
	}
	tf, err := os.Open(tPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	file, err := traceevent.Decode(tf)
	if err != nil {
		t.Fatalf("decode trace export: %v", err)
	}
	if err := file.Validate(); err != nil {
		t.Fatalf("trace export fails schema check: %v", err)
	}
	spanCount := 0
	var wantUS float64
	m.Spans.Walk(func(sp *obs.Span, depth int) {
		spanCount++
		wantUS += float64(sp.DurNS) / 1e3
	})
	stageEvents := 0
	for _, e := range file.TraceEvents {
		if e.Cat == "stage" {
			stageEvents++
		}
	}
	if stageEvents != spanCount {
		t.Errorf("trace has %d stage events, manifest has %d spans", stageEvents, spanCount)
	}
	if got := file.SpanDurUS(); math.Abs(got-wantUS) > 1e-3*float64(spanCount) {
		t.Errorf("stage durations sum to %.3fµs, manifest spans sum to %.3fµs", got, wantUS)
	}
}

// TestProfileTraceExport checks 'simprof profile -trace' writes a
// loadable trace-event file alongside the workload trace.
func TestProfileTraceExport(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	out := filepath.Join(dir, "wc.gob")
	tPath := filepath.Join(dir, "profile_trace.json")
	args := []string{"-bench", "wc", "-framework", "spark", "-seed", "7",
		"-textbytes", "50331648", "-out", out, "-trace", tPath}
	if err := cmdProfile(args); err != nil {
		t.Fatalf("profile: %v", err)
	}
	tf, err := os.Open(tPath)
	if err != nil {
		t.Fatalf("profile -trace wrote nothing: %v", err)
	}
	defer tf.Close()
	file, err := traceevent.Decode(tf)
	if err != nil {
		t.Fatal(err)
	}
	if err := file.Validate(); err != nil {
		t.Fatalf("trace export fails schema check: %v", err)
	}
	stages := 0
	for _, e := range file.TraceEvents {
		if e.Cat == "stage" {
			stages++
		}
	}
	if stages == 0 {
		t.Error("profile trace export has no stage events")
	}
}

// TestProfileFaultManifest checks that 'simprof profile -faults
// -telemetry' records the fault channel counts in the manifest.
func TestProfileFaultManifest(t *testing.T) {
	defer obs.Disable()
	dir := t.TempDir()
	out := filepath.Join(dir, "wc.gob")
	mPath := filepath.Join(dir, "profile.json")
	args := []string{"-bench", "wc", "-framework", "spark", "-seed", "7",
		"-textbytes", "50331648", "-faults", "rate=0.08", "-out", out, "-telemetry", mPath}
	if err := cmdProfile(args); err != nil {
		t.Fatalf("profile: %v", err)
	}
	m, err := obs.ReadManifestFile(mPath)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	if m.Faults == nil {
		t.Fatal("manifest has no fault section")
	}
	if m.Faults.Spec == "" || m.Faults.Seed == 0 {
		t.Errorf("fault provenance incomplete: %+v", m.Faults)
	}
	injected := m.Faults.CountersDropped + m.Faults.Multiplexed + m.Faults.SnapshotsLost +
		m.Faults.UnitsLost + m.Faults.Duplicated + m.Faults.Displaced
	if injected == 0 {
		t.Error("rate=0.08 injected nothing")
	}
	if m.Workload == nil || m.Workload.DegradedFraction == 0 {
		t.Errorf("workload degraded fraction not recorded: %+v", m.Workload)
	}
}
