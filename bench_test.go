// Package simprof_test benchmarks the regeneration of every table and
// figure in the paper's evaluation (run with `go test -bench=. -benchmem`).
// Each benchmark rebuilds the relevant part of the experiment suite from
// scratch at the Quick scale, so the reported time is the full cost of
// reproducing that artifact: synthesizing inputs, executing the
// workload(s) on the simulated machine, profiling, phase formation and
// the figure's own analysis. The companion `cmd/expreport` prints the
// actual figure contents at the default scale.
package simprof_test

import (
	"testing"

	"simprof/internal/experiments"
)

// newSuite builds a fresh Quick-scale suite with nothing cached.
func newSuite(seed uint64) *experiments.Suite {
	cfg := experiments.Quick()
	cfg.Seed = seed
	return experiments.NewSuite(cfg)
}

func BenchmarkTableI_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		rows, err := s.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows=%d", len(rows))
		}
	}
}

func BenchmarkFig6_CoV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		rows, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows=%d", len(rows))
		}
	}
}

func BenchmarkFig7_SamplingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		rows, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		avg := experiments.Averages(rows)
		if avg.SimProf <= 0 {
			b.Fatal("degenerate SimProf error")
		}
	}
}

func BenchmarkFig8_SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_PhaseCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_PhaseTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_Allocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_Inputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if got := len(s.TableII()); got != 8 {
			b.Fatalf("inputs=%d", got)
		}
	}
}

func BenchmarkFig12_SensitivityReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13_SensitivePhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14_WordCountSpark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.WordCountAnatomy("spark"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_WordCountHadoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.WordCountAnatomy("hadoop"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ProfilingParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.AblationUnitSize(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.AblationSnapshotRate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_CombinedSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(uint64(i) + 1)
		if _, err := s.AblationCombined(); err != nil {
			b.Fatal(err)
		}
	}
}
