module simprof

go 1.24
