#!/bin/sh
# Benchmark snapshot for the performance-tracked kernels: the k sweep
# (ChooseK), phase formation end-to-end (Form, plus the FormPhases
# worker sweep), the naive-vs-pruned Lloyd kernel pair (KMeansDense),
# sparse vectorization, SimProf's stratified selection, the telemetry
# fast paths (disabled must stay at 0 allocs/op, enabled is the
# instrumented cost — the labeled families and sliding windows in
# ObsDisabledLabeled carry the same contract), the access-log request
# path (AccessLog: enqueue with a live logger vs the nil no-op), and
# the columnar trace format (DecodeBin vs the
# legacy DecodeGob on the same 100k-unit trace, plus EndToEnd100k —
# the decode → Form → allocate → estimate pipeline whose <100ms budget
# the gate enforces), the request-trace retention engine (ReqTrace:
# disabled must stay at 0 allocs/op, enabled is the stratify + reservoir
# + rebalance cost), and the simprofd service under concurrent load
# (SimprofdP99 reports the p99 request latency as its ns/op metric so
# the tail rides the same gate; SimprofdStorm drives a duplicate-heavy
# storm through the batched path and the inline baseline, reporting p99
# as ns/op plus req/s and the measured dedup ratio — the duplicate
# fraction is tunable with SIMPROF_STORM_DUP). Results stream to
# BENCH_pipeline.json in `go test -json` (test2json) format so CI can
# diff runs; the classic benchmark lines echo to stdout for humans.
set -eu

OUT="${1:-BENCH_pipeline.json}"
BENCHTIME="${BENCHTIME:-1x}"
# BENCHCOUNT > 1 repeats every benchmark so the regression gate
# (simprof history gate) can take medians and measure baseline noise.
BENCHCOUNT="${BENCHCOUNT:-1}"

go test -run '^$' \
	-bench '^(BenchmarkChooseK|BenchmarkForm$|BenchmarkFormPhases|BenchmarkKMeansDense|BenchmarkVectorizeSparse$|BenchmarkSimProfSelection$|BenchmarkTelemetry|BenchmarkObsDisabledLabeled$|BenchmarkDecodeBin$|BenchmarkDecodeGob$|BenchmarkEndToEnd100k$|BenchmarkSimprofdP99$|BenchmarkSimprofdStorm$|BenchmarkAccessLog$|BenchmarkReqTrace)' \
	-benchtime "$BENCHTIME" -count "$BENCHCOUNT" -benchmem -json \
	./internal/cluster ./internal/phase ./internal/sampling ./internal/obs ./internal/obs/reqtrace ./internal/tracebin ./internal/server \
	>"$OUT"

echo "wrote $OUT"
# Re-surface the human-readable result lines: test2json may split a
# benchmark's name and its result into separate Output events, so
# reassemble the raw stream before filtering.
grep -o '"Output":"[^"]*"' "$OUT" |
	sed -e 's/^"Output":"//' -e 's/"$//' |
	awk '{ printf "%s", $0 } END { print "" }' |
	sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' |
	grep 'ns/op'
