#!/bin/sh
# CI gate: build everything, lint with vet, then run the full test suite
# under the race detector so the parallel compute kernels (the k sweep,
# k-means restarts, silhouette passes, the experiment driver) are
# exercised with synchronization checking on every change. A short
# fuzzing smoke on the trace decoders closes the loop on the failure
# model: no byte stream may panic the decode path.
set -eux

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: a small time budget per decoder target. Any crasher the
# engine finds is persisted under internal/trace/testdata/fuzz and will
# fail plain `go test` runs from then on.
for target in FuzzDecodeGob FuzzDecodeJSON; do
	go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s ./internal/trace
done
