#!/bin/sh
# CI gate, in named stages so a red run says which contract broke:
#
#   tier1-build   go build ./...            (everything compiles)
#   tier1-test    go test ./...             (the correctness suite)
#   vet           go vet ./...              (static checks)
#   gofmt         gofmt -l                  (no unformatted files)
#   race          go test -race ./...       (parallel kernels under the
#                                            race detector)
#   bench-smoke   telemetry disabled path   (0 allocs/op or the no-op
#                                            sink contract is broken;
#                                            covers the obs metrics and
#                                            the disabled reqtrace path)
#   fuzz-smoke    trace decoders            (no byte stream may panic
#                                            the decode path: gob, JSON
#                                            and the tracebin columns)
#   trace-golden  trace-event export        (byte-stable golden + schema
#                                            tests for the Perfetto export)
#   tracebin-golden  columnar trace format  (byte-exact encode golden +
#                                            decode of a hand-mangled
#                                            worst-case header)
#   metrics-golden  Prometheus exposition   (golden-pinned /metrics text
#                                            format, escaping tables, and
#                                            the label-value fuzz seeds)
#   reqtrace-golden  retained-trace views   (golden-pinned inspect render
#                                            of a trace manifest, the
#                                            /v1/traces endpoints, export
#                                            validity and the tracing
#                                            on/off determinism contract)
#   kernel-equivalence  pruned vs naive     (bound-pruned k-means must be
#                                            bit-for-bit the naive kernel,
#                                            run twice to shake out
#                                            scratch-pool reuse; phase
#                                            formation on a decoded bin
#                                            trace must be bit-identical
#                                            at workers 1/2/8)
#   chaos-smoke   simprofd fault suite      (stalled clients, cancels,
#                                            torn appends, breaker trips,
#                                            overload — typed errors, no
#                                            leaks, no store corruption;
#                                            runs under -race plus the
#                                            resilience + crash-recovery
#                                            unit suites)
#   batch-smoke   dedup/batch serving       (bit-identical responses
#                                            batched vs inline and cached
#                                            vs computed, coalescing and
#                                            leader-cancel hand-off,
#                                            cache bounds/eviction, and
#                                            the batch + two-phase
#                                            admission unit suites; all
#                                            under -race)
#   bench-gate    perf-regression gate      (fresh bench run vs the
#                                            committed BENCH_pipeline.json
#                                            baseline, noise-aware medians)
#
# tier1-* is the fast must-stay-green core; the later stages are the
# slower hardening smoke. Run individual stages with ./scripts/check.sh
# <stage> [stage...]. bench-gate is opt-in (not in the default stage
# list): benchmark wall times only compare meaningfully on the machine
# that produced the baseline. Refresh the baseline with
#   BENCHTIME=0.5s BENCHCOUNT=5 ./scripts/bench.sh
# and tune the gate with GATE_BENCHTIME / GATE_BENCHCOUNT.
set -u

fail() {
	echo "FAIL stage=$1" >&2
	exit 1
}

run_tier1_build() {
	go build ./... || fail tier1-build
}

run_tier1_test() {
	go test ./... || fail tier1-test
}

run_vet() {
	go vet ./... || fail vet
}

run_gofmt() {
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "unformatted files:" >&2
		echo "$unformatted" >&2
		fail gofmt
	fi
}

run_race() {
	go test -race ./... || fail race
}

run_bench_smoke() {
	out=$(go test -run '^$' -bench '^Benchmark(TelemetryDisabled|ObsDisabledLabeled)$' -benchtime 100x -benchmem ./internal/obs) || fail bench-smoke
	echo "$out"
	# Every disabled-path sub-benchmark must report exactly 0 allocs/op:
	# the no-op sink is contractually allocation-free on hot paths. The
	# labeled families (CounterVec/GaugeVec/HistogramVec) and the sliding
	# windows carry the same contract as the scalar metrics: With(...)
	# must bail on the enabled check before any map or slice touches.
	echo "$out" | awk '
		/^Benchmark(TelemetryDisabled|ObsDisabledLabeled)/ {
			for (i = 1; i <= NF; i++)
				if ($i == "allocs/op" && $(i-1) + 0 != 0) bad = 1
		}
		END { exit bad }
	' || fail bench-smoke
	# Request tracing carries the same contract: with tracing off, the
	# per-request middleware cost (a nil engine's Start/Finish) must be
	# allocation-free.
	out=$(go test -run '^$' -bench '^BenchmarkReqTraceDisabled$' -benchtime 100x -benchmem ./internal/obs/reqtrace) || fail bench-smoke
	echo "$out"
	echo "$out" | awk '
		/^BenchmarkReqTraceDisabled/ {
			for (i = 1; i <= NF; i++)
				if ($i == "allocs/op" && $(i-1) + 0 != 0) bad = 1
		}
		END { exit bad }
	' || fail bench-smoke
}

run_metrics_golden() {
	# The Prometheus text exposition is pinned by a golden file
	# (regenerate with UPDATE_GOLDEN=1) plus escaping tables, and the
	# label-value escaper must round-trip any byte sequence — the fuzz
	# target's committed seeds run as plain tests here.
	go test -run 'TestWritePrometheus|TestProm|FuzzPromLabelValue' ./internal/obs || fail metrics-golden
}

run_trace_golden() {
	# The Chrome trace-event exporter is pinned byte-for-byte by a golden
	# file plus schema/sum-match invariants; regenerate the golden with
	# `go test ./internal/obs/traceevent -run TestTraceEventGolden -update`.
	go test -run 'TestTraceEvent' ./internal/obs/traceevent || fail trace-golden
}

run_tracebin_golden() {
	# The columnar trace format is pinned by a committed fixture: encode
	# must reproduce it byte-for-byte (any drift requires a Version bump;
	# regenerate with UPDATE_GOLDEN=1), decode must accept it and a
	# hostile re-layout of its section table (reversed entry order,
	# poisoned reserved words) identically.
	go test -run 'TestGolden|TestHostileHeaderLayout' ./internal/tracebin || fail tracebin-golden
}

run_reqtrace_golden() {
	# The retained-trace surfaces: the inspect rendering of a trace
	# manifest is golden-pinned (regenerate with UPDATE_GOLDEN=1), the
	# /v1/traces endpoints list/filter/export with a schema-valid
	# trace-event file, and the pipeline output must be bit-identical
	# with tracing on and off.
	go test -run 'TestInspectReqTraceGolden|TestInspectLabeledVecAlignment' ./cmd/simprof || fail reqtrace-golden
	go test -run 'TestTraces|TestTraceExportEndpoint|TestTracingOnOffDeterminism|TestTracedProfilePersistsSpans' \
		./internal/server || fail reqtrace-golden
	go test -run 'TestTracesRender|TestServeTraceFlags' ./cmd/simprofd || fail reqtrace-golden
}

run_bench_gate() {
	baseline="${BASELINE:-BENCH_pipeline.json}"
	if [ ! -f "$baseline" ]; then
		echo "bench-gate: no baseline $baseline (run 'make bench' and commit it)" >&2
		fail bench-gate
	fi
	cur=$(mktemp -t bench_gate.XXXXXX.json) || fail bench-gate
	trap 'rm -f "$cur"' EXIT
	BENCHTIME="${GATE_BENCHTIME:-0.2s}" BENCHCOUNT="${GATE_BENCHCOUNT:-3}" \
		./scripts/bench.sh "$cur" >/dev/null || fail bench-gate
	# Per-benchmark headroom: the sub-millisecond microbenchmarks
	# (sparse vectorization, the naive/pruned kernel pair) are noisier
	# than the end-to-end pipeline benches at the gate's short benchtime,
	# so they get wider thresholds; BenchmarkForm keeps the tight default
	# — it is the kernel-speedup acceptance gate.
	# BenchmarkEndToEnd100k is the 100ms-budget acceptance bench: its
	# ~80ms median leaves real headroom under the budget but the 1-CPU
	# runner shows ~±10% spread across runs, so it gets 0.40; the two
	# decode benches are steadier bulk-throughput loops and keep a
	# moderate 0.35. BenchmarkSimprofdP99 is a tail statistic of a
	# concurrent HTTP workload — the noisiest number in the file by
	# construction — so it gets the widest band: it is there to catch a
	# structural tail regression (a lock on the hot path, a lost
	# fast-path), not scheduler jitter. The SimprofdStorm pair are tail
	# statistics of the same construction — batched is mostly cache-hit
	# latency, baseline is compute under saturation — and share that
	# widest band.
	# The single-digit-ns observability paths (disabled labeled metrics,
	# the access-log enqueue, the disabled reqtrace Start/Finish) sit at
	# the timer's resolution floor, so they get the wide microbenchmark
	# band — their real contract (0 allocs/op) is enforced by
	# bench-smoke, not by wall time. The enabled reqtrace path is a
	# sub-microsecond map-and-reservoir loop with the same jitter
	# profile.
	go run ./cmd/simprof history gate -baseline "$baseline" -bench "$cur" \
		-per-bench "BenchmarkVectorizeSparse=0.60,BenchmarkKMeansDense/Naive=0.50,BenchmarkKMeansDense/Pruned=0.50,BenchmarkEndToEnd100k=0.40,BenchmarkDecodeBin=0.35,BenchmarkDecodeGob=0.35,BenchmarkSimprofdP99=0.75,BenchmarkSimprofdStorm/batched=0.75,BenchmarkSimprofdStorm/baseline=0.75,BenchmarkObsDisabledLabeled/countervec=0.60,BenchmarkObsDisabledLabeled/gaugevec=0.60,BenchmarkObsDisabledLabeled/histogramvec=0.60,BenchmarkObsDisabledLabeled/windowedhist=0.60,BenchmarkObsDisabledLabeled/windowedcounter=0.60,BenchmarkAccessLog/enqueue=0.60,BenchmarkAccessLog/disabled=0.60,BenchmarkReqTraceDisabled=0.60,BenchmarkReqTraceEnabled=0.60" \
		|| fail bench-gate
}

run_kernel_equivalence() {
	# -count=2 runs every equivalence test twice in one process: the
	# second round hits the warm scratch pool, catching any state the
	# pruned kernel leaks between runs.
	go test -run 'TestPruned|TestChooseKPruned|TestSeedingPickSequence|TestDrawWeighted|TestNearestSet|TestSimplifiedSilhouetteDense|TestPruningEffectiveness' \
		-count=2 ./internal/cluster || fail kernel-equivalence
	# The chunk-parallel TopK projection inside phase.Form must produce
	# bit-identical phases at any worker count, on both the gob and the
	# zero-copy tracebin ingest paths.
	go test -run 'TestFormBitIdentical|TestRoundTripGobBinGob|TestFreqMatchesVectorizeSparse' \
		-count=2 ./internal/tracebin || fail kernel-equivalence
}

run_chaos_smoke() {
	# The resilience contract under injected faults, always with the race
	# detector on: the chaos suite (internal/server TestChaos*) plus the
	# primitives it leans on — the taxonomy/retry/breaker/admission/drain
	# unit tests, crash-recovery property tests for the history store, the
	# I/O fault channels, and the cancellation tests for the parallel
	# engine.
	go test -race -count=1 -run 'TestChaos' ./internal/server || fail chaos-smoke
	go test -race -count=1 -run 'TestChaos|TestPersist' ./internal/obs/reqtrace || fail chaos-smoke
	go test -race -count=1 ./internal/resilience ./internal/faults || fail chaos-smoke
	go test -race -count=1 -run 'TestRecoverTail|TestDurable' ./internal/history || fail chaos-smoke
	go test -race -count=1 -run 'TestCancel|TestWithContext|TestDeterminismUnchangedByContext' \
		./internal/parallel || fail chaos-smoke
}

run_batch_smoke() {
	# The batched-serving determinism contract under the race detector:
	# batching/caching may change when and how often the pipeline runs,
	# never what a request gets back. Covers the batch group + LRU cache
	# unit suite, the two-phase admission tickets, and the HTTP-level
	# bit-identity, coalescing, hand-off and eviction tests.
	go test -race -count=1 ./internal/batch || fail batch-smoke
	go test -race -count=1 -run 'TestTicket' ./internal/resilience || fail batch-smoke
	go test -race -count=1 \
		-run 'TestBatched|TestCached|TestCacheEviction|TestCoalesced|TestLeaderCancel|TestIdenticalBytes|TestMaxBodyLimit|TestChaosDuplicateStorm' \
		./internal/server || fail batch-smoke
}

run_fuzz_smoke() {
	# A small time budget per decoder target. Any crasher the engine
	# finds is persisted under internal/trace/testdata/fuzz and will fail
	# plain `go test` runs from then on.
	for spec in \
		"FuzzDecodeGob ./internal/trace" \
		"FuzzDecodeJSON ./internal/trace" \
		"FuzzDecodeBin ./internal/tracebin"; do
		target=${spec% *}
		pkg=${spec#* }
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s "$pkg" || fail fuzz-smoke
	done
}

stages="${*:-tier1-build tier1-test vet gofmt race bench-smoke kernel-equivalence chaos-smoke batch-smoke fuzz-smoke trace-golden tracebin-golden metrics-golden reqtrace-golden}"
for stage in $stages; do
	echo "==> $stage"
	case "$stage" in
	tier1-build) run_tier1_build ;;
	tier1-test) run_tier1_test ;;
	vet) run_vet ;;
	gofmt) run_gofmt ;;
	race) run_race ;;
	bench-smoke) run_bench_smoke ;;
	fuzz-smoke) run_fuzz_smoke ;;
	trace-golden) run_trace_golden ;;
	tracebin-golden) run_tracebin_golden ;;
	metrics-golden) run_metrics_golden ;;
	reqtrace-golden) run_reqtrace_golden ;;
	kernel-equivalence) run_kernel_equivalence ;;
	chaos-smoke) run_chaos_smoke ;;
	batch-smoke) run_batch_smoke ;;
	bench-gate) run_bench_gate ;;
	*)
		echo "unknown stage $stage" >&2
		exit 2
		;;
	esac
done
echo "OK: $stages"
