#!/bin/sh
# CI gate: build everything, lint with vet, then run the full test suite
# under the race detector so the parallel compute kernels (the k sweep,
# k-means restarts, silhouette passes, the experiment driver) are
# exercised with synchronization checking on every change.
set -eux

go build ./...
go vet ./...
go test -race ./...
