#!/bin/sh
# CI gate, in named stages so a red run says which contract broke:
#
#   tier1-build   go build ./...            (everything compiles)
#   tier1-test    go test ./...             (the correctness suite)
#   vet           go vet ./...              (static checks)
#   gofmt         gofmt -l                  (no unformatted files)
#   race          go test -race ./...       (parallel kernels under the
#                                            race detector)
#   bench-smoke   telemetry disabled path   (0 allocs/op or the no-op
#                                            sink contract is broken)
#   fuzz-smoke    trace decoders            (no byte stream may panic
#                                            the decode path)
#
# tier1-* is the fast must-stay-green core; the later stages are the
# slower hardening smoke. Run individual stages with ./scripts/check.sh
# <stage> [stage...].
set -u

fail() {
	echo "FAIL stage=$1" >&2
	exit 1
}

run_tier1_build() {
	go build ./... || fail tier1-build
}

run_tier1_test() {
	go test ./... || fail tier1-test
}

run_vet() {
	go vet ./... || fail vet
}

run_gofmt() {
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "unformatted files:" >&2
		echo "$unformatted" >&2
		fail gofmt
	fi
}

run_race() {
	go test -race ./... || fail race
}

run_bench_smoke() {
	out=$(go test -run '^$' -bench '^BenchmarkTelemetryDisabled$' -benchtime 100x -benchmem ./internal/obs) || fail bench-smoke
	echo "$out"
	# Every disabled-path sub-benchmark must report exactly 0 allocs/op:
	# the no-op sink is contractually allocation-free on hot paths.
	echo "$out" | awk '
		/^BenchmarkTelemetryDisabled/ {
			for (i = 1; i <= NF; i++)
				if ($i == "allocs/op" && $(i-1) + 0 != 0) bad = 1
		}
		END { exit bad }
	' || fail bench-smoke
}

run_fuzz_smoke() {
	# A small time budget per decoder target. Any crasher the engine
	# finds is persisted under internal/trace/testdata/fuzz and will fail
	# plain `go test` runs from then on.
	for target in FuzzDecodeGob FuzzDecodeJSON; do
		go test -run='^$' -fuzz="^${target}\$" -fuzztime=10s ./internal/trace || fail fuzz-smoke
	done
}

stages="${*:-tier1-build tier1-test vet gofmt race bench-smoke fuzz-smoke}"
for stage in $stages; do
	echo "==> $stage"
	case "$stage" in
	tier1-build) run_tier1_build ;;
	tier1-test) run_tier1_test ;;
	vet) run_vet ;;
	gofmt) run_gofmt ;;
	race) run_race ;;
	bench-smoke) run_bench_smoke ;;
	fuzz-smoke) run_fuzz_smoke ;;
	*)
		echo "unknown stage $stage" >&2
		exit 2
		;;
	esac
done
echo "OK: $stages"
