// wordcount_phases reproduces the paper's Figs. 14–15 analysis: the
// phase anatomy of WordCount on Spark versus Hadoop. Spark's map-side
// reduce (Aggregator.combineValuesByKey) folds tokenize/map/IO into one
// dominant phase, while Hadoop separates the mapper, the combiner and
// the quicksort into phases of their own with very different CPI
// variation.
//
//	go run ./examples/wordcount_phases
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"simprof/internal/core"
	"simprof/internal/report"
	"simprof/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	opts := workloads.Options{}.WithDefaults()

	for _, fw := range []string{"spark", "hadoop"} {
		input, err := workloads.DefaultInput("wc", opts)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := core.ProfileWorkload("wc", fw, input, opts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ph, err := core.FormPhases(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("%s — %d units, %d phases", tr.Name(), len(tr.Units), ph.K),
			"Phase", "Weight", "Mean CPI", "CPI CoV", "Type", "Dominant methods")
		cpis := ph.CPIStats()
		for h := 0; h < ph.K; h++ {
			t.RowS(fmt.Sprint(h),
				fmt.Sprintf("%.1f%%", 100*ph.Weights()[h]),
				fmt.Sprintf("%.2f", cpis[h].Mean),
				fmt.Sprintf("%.3f", cpis[h].CoV),
				ph.DominantKind(h).String(),
				strings.Join(ph.DominantMethods(h, 2), ", "))
		}
		t.Render(os.Stdout)
		cov := ph.CoV()
		fmt.Printf("population CoV %.3f → weighted CoV %.3f (phase formation removed %.0f%% of the variation)\n\n",
			cov.Population, cov.Weighted, 100*(1-safeDiv(cov.Weighted, cov.Population)))
	}
	fmt.Println("Note how wc_sp concentrates in one combineValuesByKey-dominated phase")
	fmt.Println("(the map-side reduce of Fig. 14) while wc_hp splits map/combine/sort phases")
	fmt.Println("with the quicksort phase showing the highest CPI variation (Fig. 15).")
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
