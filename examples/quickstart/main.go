// Quickstart: profile WordCount on the simulated Spark engine, form
// phases, and pick 20 simulation points with a confidence interval —
// the whole SimProf pipeline in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"simprof/internal/core"
	"simprof/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 7

	// 1. Build the workload and profile it on the simulated machine.
	//    (This is where the paper attaches JVMTI + perf_event to a real
	//    Spark executor; here the whole cluster is simulated.)
	opts := workloads.Options{TextBytes: 128 << 20}.WithDefaults()
	input, err := workloads.DefaultInput("wc", opts)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.ProfileWorkload("wc", "spark", input, opts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d sampling units of %dM instructions\n",
		tr.Name(), len(tr.Units), tr.UnitInstr/1_000_000)

	// 2. Phase formation: vectorize call-stack snapshots, select the
	//    IPC-correlated methods, cluster with k-means + silhouette.
	ph, err := core.FormPhases(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formed %d phases (weights %v)\n", ph.K, percent(ph.Weights()))
	for h := 0; h < ph.K; h++ {
		fmt.Printf("  phase %d: %s, dominated by %v\n",
			h, ph.DominantKind(h), ph.DominantMethods(h, 2))
	}

	// 3. Stratified random sampling with optimal allocation (Eq. 1).
	points, err := core.SelectPoints(ph, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d simulation points, allocation %v\n", points.Size(), points.Alloc)
	fmt.Printf("estimated CPI %s — oracle is %.4f (%.2f%% error)\n",
		points.CI(0.997), tr.OracleCPI(), 100*points.Err(tr))
	fmt.Println("simulate only these units in your detailed simulator:")
	fmt.Println(" ", points.UnitIDs)
}

func percent(ws []float64) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("%.1f%%", 100*w)
	}
	return out
}
