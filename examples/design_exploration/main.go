// design_exploration demonstrates what the simulation points are *for*:
// architectural design-space exploration. The points are selected once
// on the profiled baseline machine; each candidate design then only
// "detail-simulates" those 20 units, and the stratified estimate ranks
// the designs — at a tiny fraction of full-run cost.
//
//	go run ./examples/design_exploration
package main

import (
	"fmt"
	"log"
	"os"

	"simprof/internal/core"
	"simprof/internal/report"
	"simprof/internal/sampling"
	"simprof/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	opts := workloads.Options{TextBytes: 128 << 20}.WithDefaults()
	input, err := workloads.DefaultInput("wc", opts)
	if err != nil {
		log.Fatal(err)
	}

	// Profile once on the baseline and pick the simulation points.
	base, err := core.ProfileWorkload("wc", "spark", input, opts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ph, err := core.FormPhases(base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	points, err := core.SelectPoints(ph, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fullUnits := len(base.Units)
	fmt.Printf("profiled wc_sp on the baseline: %d units, %d phases; selected %d points (%.1f%% of the run)\n\n",
		fullUnits, ph.K, points.Size(), 100*float64(points.Size())/float64(fullUnits))

	// Candidate designs: LLC and memory-latency sweep.
	designs := []struct {
		label  string
		mutate func(*core.Config)
	}{
		{"baseline", func(c *core.Config) {}},
		{"LLC 4MB", func(c *core.Config) { c.Machine.Hier.LLC.SizeBytes = 4 << 20 }},
		{"LLC 16MB", func(c *core.Config) { c.Machine.Hier.LLC.SizeBytes = 16 << 20 }},
		{"HBM-class memory (90cy)", func(c *core.Config) { c.Machine.Hier.PenaltyMem = 90 }},
	}
	t := report.NewTable("Candidate designs, estimated from 20 points vs full-run oracle",
		"Design", "Oracle CPI", "Estimate", "Error", "Detail budget")
	for _, d := range designs {
		dcfg := cfg
		d.mutate(&dcfg)
		// In real life this would be the detailed simulator running
		// ONLY the selected units; here the simulated machine plays
		// both roles and the full run doubles as the oracle.
		target, err := core.ProfileWorkload("wc", "spark", input, opts, dcfg)
		if err != nil {
			log.Fatal(err)
		}
		est, err := sampling.EstimateOnTrace(ph, points, target)
		if err != nil {
			log.Fatal(err)
		}
		t.RowS(d.label,
			fmt.Sprintf("%.3f", target.OracleCPI()),
			fmt.Sprintf("%.3f", est.EstCPI),
			fmt.Sprintf("%.1f%%", 100*est.Err(target)),
			fmt.Sprintf("%d of %d units", points.Size(), fullUnits))
	}
	t.Render(os.Stdout)
	fmt.Println("The estimates rank the designs identically to the oracle while simulating")
	fmt.Printf("~%.1f%% of the instructions — the speedup SimProf exists to provide.\n",
		100*float64(points.Size())/float64(fullUnits))
}
