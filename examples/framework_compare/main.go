// framework_compare runs all six Table I benchmarks on both simulated
// engines and compares their phase structure (Fig. 9), phase types
// (Fig. 10) and the accuracy of 20-point SimProf sampling — the
// Hadoop-vs-Spark analysis threaded through the paper's evaluation.
//
//	go run ./examples/framework_compare
package main

import (
	"fmt"
	"log"
	"os"

	"simprof/internal/core"
	"simprof/internal/model"
	"simprof/internal/report"
	"simprof/internal/sampling"
	"simprof/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	// Scaled-down inputs so this example runs in a few seconds.
	opts := workloads.Options{
		TextBytes: 96 << 20, SortBytes: 128 << 20,
		GraphScale: 17, SparkIterations: 6, HadoopIterations: 2,
	}.WithDefaults()

	t := report.NewTable("Hadoop vs Spark across the Table I suite",
		"Workload", "Units", "Phases", "map", "reduce", "sort", "io", "SimProf err")
	for _, fw := range []string{"hadoop", "spark"} {
		for _, bench := range workloads.Benchmarks() {
			input, err := workloads.DefaultInput(bench, opts)
			if err != nil {
				log.Fatal(err)
			}
			tr, err := core.ProfileWorkload(bench, fw, input, opts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			ph, err := core.FormPhases(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			sp, err := sampling.SimProf(ph, 20, cfg.Seed)
			if err != nil {
				log.Fatal(err)
			}
			dist := ph.TypeDistribution()
			t.RowS(tr.Name(),
				fmt.Sprint(len(tr.Units)),
				fmt.Sprint(ph.K),
				pct(dist[model.KindMap]), pct(dist[model.KindReduce]),
				pct(dist[model.KindSort]), pct(dist[model.KindIO]),
				fmt.Sprintf("%.2f%%", 100*sp.Err(tr)))
		}
	}
	t.Render(os.Stdout)
	fmt.Println("Expected shape (paper §IV-D): sort-dominated phases appear only on Hadoop")
	fmt.Println("(map-side spill sort); Hadoop spends more time in IO; Spark's grep runs as")
	fmt.Println("a single filter phase.")
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
