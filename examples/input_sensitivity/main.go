// input_sensitivity reproduces the paper's §IV-E study: train SimProf's
// phases on the google Kronecker graph, classify the sampling units of
// seven structurally different reference graphs onto those phases, and
// mark the phases whose CPI distribution shifts by more than 10%
// (Eq. 6). Simulation points in the remaining, input-insensitive phases
// can be skipped when exploring new inputs.
//
//	go run ./examples/input_sensitivity
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"simprof/internal/core"
	"simprof/internal/report"
	"simprof/internal/synth"
	"simprof/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	opts := workloads.Options{}.WithDefaults()

	// Table II: one training input, seven references with diverse
	// connectivity (web graph ... road network).
	inputs := synth.TableIIStats(19, 141)
	train, refs := inputs[0], inputs[1:]
	fmt.Printf("training input: %s (skew %.2f); %d reference inputs\n",
		train.Name, train.Skew, len(refs))

	tr, err := core.ProfileWorkload("cc", "spark", train, opts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ph, err := core.FormPhases(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.InputSensitivity("cc", "spark", ph, refs, opts, cfg)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("cc_sp input sensitivity per phase",
		"Phase", "Weight", "Train CPI", "Sensitive", "Triggered by", "Dominant method")
	for h := 0; h < ph.K; h++ {
		var trig []string
		for _, ir := range rep.Inputs {
			if ir.Sensitive[h] {
				trig = append(trig, ir.Input)
			}
		}
		dom := ""
		if ms := ph.DominantMethods(h, 1); len(ms) > 0 {
			dom = ms[0]
		}
		t.RowS(fmt.Sprint(h),
			fmt.Sprintf("%.1f%%", 100*ph.Weights()[h]),
			fmt.Sprintf("%.2f", rep.Train.Mean[h]),
			fmt.Sprint(rep.Sensitive[h]),
			strings.Join(trig, ","), dom)
	}
	t.Render(os.Stdout)

	points, err := core.SelectPoints(ph, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	kept := rep.SensitivePointFraction(ph, points.UnitIDs)
	sens, insens := rep.Counts()
	fmt.Printf("%d sensitive / %d insensitive phases\n", sens, insens)
	fmt.Printf("of %d simulation points, %.0f%% fall in sensitive phases —\n",
		points.Size(), 100*kept)
	fmt.Printf("each additional input needs only those; the rest are skipped (paper: 33.7%% average reduction).\n")
}
