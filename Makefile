# Developer entry points. `make check` is the CI gate: it must stay
# green, including the race detector over the parallel compute kernels
# and a short fuzz smoke on the trace decoders.

GO ?= go

.PHONY: build test bench race vet fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/cluster/ ./internal/phase/

# Short-budget fuzzing of the trace decode path (the trust boundary of
# the failure model in DESIGN.md §9). Raise -fuzztime for a deep run.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeGob$$' -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeJSON$$' -fuzztime=10s ./internal/trace

check: ; ./scripts/check.sh
