# Developer entry points. `make check` is the staged CI gate (see
# scripts/check.sh): tier-1 build+test, vet, gofmt, the race detector
# over the parallel compute kernels, the telemetry 0-alloc bench smoke
# and a short fuzz smoke on the trace decoders.

GO ?= go

.PHONY: build test bench bench-gate race vet fuzz chaos check tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark snapshot of the performance-tracked kernels (ChooseK, phase
# formation, SimProf selection, telemetry fast paths) → BENCH_pipeline.json.
# Set BENCHTIME=1s for stable numbers; the default 1x is a smoke run.
bench:
	./scripts/bench.sh

# Perf-regression gate: a fresh (short) bench run compared against the
# committed BENCH_pipeline.json baseline with noise-aware medians
# (simprof history gate). Non-zero exit on regression. Tune with
# GATE_BENCHTIME / GATE_BENCHCOUNT; refresh the baseline with
# BENCHTIME=0.5s BENCHCOUNT=5 make bench and commit the result.
bench-gate:
	./scripts/check.sh bench-gate

# Chaos harness: the simprofd fault suite plus the resilience, crash
# recovery and cancellation tests it rests on, all under -race. This is
# the "does the service survive hostile conditions" gate.
chaos:
	./scripts/check.sh chaos-smoke

# Short-budget fuzzing of the trace decode path (the trust boundary of
# the failure model in DESIGN.md §9). Raise -fuzztime for a deep run.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeGob$$' -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeJSON$$' -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeBin$$' -fuzztime=10s ./internal/tracebin

# The fast must-stay-green core of the CI gate.
tier1: ; ./scripts/check.sh tier1-build tier1-test

check: ; ./scripts/check.sh
