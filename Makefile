# Developer entry points. `make check` is the CI gate: it must stay
# green, including the race detector over the parallel compute kernels.

GO ?= go

.PHONY: build test bench race vet check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/cluster/ ./internal/phase/

check: ; ./scripts/check.sh
